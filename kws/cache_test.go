package kws

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cacheQueries exercise every engine kind and a few rankings and budgets.
var cacheQueries = []Query{
	{Keywords: []string{"Smith", "XML"}, MaxJoins: 3},
	{Keywords: []string{"Smith", "XML"}, Engine: EngineMTJNT, Ranking: RankRDBLength, MaxJoins: 3},
	{Keywords: []string{"Smith", "XML"}, Engine: EngineBANKS, MaxJoins: 3},
	{Keywords: []string{"Alice", "XML"}, Ranking: RankLoosenessPenalty, MaxJoins: 4},
	{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: 2, InstanceChecks: ToggleOff},
}

// TestCacheHitByteIdentical: a miss and the hit that follows must both be
// byte-identical to an uncached Engine.Search of the same generation.
func TestCacheHitByteIdentical(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	if cache.Engine() != engine {
		t.Fatal("Cache.Engine does not return the wrapped engine")
	}
	ctx := context.Background()
	for i, q := range cacheQueries {
		want, err := engine.Search(ctx, q)
		if err != nil {
			t.Fatalf("query %d: uncached: %v", i, err)
		}
		miss, info, err := cache.SearchInfo(ctx, q)
		if err != nil {
			t.Fatalf("query %d: miss: %v", i, err)
		}
		if info.Hit {
			t.Errorf("query %d: first lookup reported a hit", i)
		}
		if !reflect.DeepEqual(miss, want) {
			t.Errorf("query %d: miss results diverge from uncached search", i)
		}
		hit, info, err := cache.SearchInfo(ctx, q)
		if err != nil {
			t.Fatalf("query %d: hit: %v", i, err)
		}
		if !info.Hit {
			t.Errorf("query %d: second lookup missed", i)
		}
		if !reflect.DeepEqual(hit, want) {
			t.Errorf("query %d: hit results diverge from uncached search", i)
		}
	}
	st := cache.Stats()
	if st.Hits != int64(len(cacheQueries)) || st.Misses != int64(len(cacheQueries)) {
		t.Errorf("stats = %+v, want %d hits and misses", st, len(cacheQueries))
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestCacheNormalization: a query spelling out the engine defaults shares
// its entry with the zero-option query, and Parallelism never splits keys.
func TestCacheNormalization(t *testing.T) {
	engine, err := New(PaperExample(), WithDefaults(Config{MaxJoins: 3}))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	if _, _, err := cache.SearchInfo(ctx, Query{Keywords: []string{"Smith", "XML"}}); err != nil {
		t.Fatal(err)
	}
	spelled := Query{
		Keywords: []string{"Smith", "XML"}, Engine: EnginePaths, Ranking: RankCloseFirst,
		MaxJoins: 3, InstanceChecks: ToggleOn, Parallelism: 2,
	}
	_, info, err := cache.SearchInfo(ctx, spelled)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Hit {
		t.Error("fully spelled-out defaults did not hit the zero-option entry")
	}
	// Different keyword case is a different result set (matched keyword
	// lists echo the query spelling) and must not share an entry.
	_, info, err = cache.SearchInfo(ctx, Query{Keywords: []string{"smith", "xml"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit {
		t.Error("lowercased keywords hit the original-case entry")
	}
}

// TestCacheGenerationInvalidation: Apply publishes a new generation, after
// which the same query misses and answers from the new data.
func TestCacheGenerationInvalidation(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}
	before, info, err := cache.SearchInfo(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 {
		t.Fatalf("generation = %d, want 0", info.Generation)
	}
	gen, err := engine.Apply(ctx, Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e99", "L_NAME": "Smith", "S_NAME": "Zeta", "D_ID": "d1"}),
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after, info, err := cache.SearchInfo(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit {
		t.Error("post-mutation lookup hit a stale generation")
	}
	if info.Generation != gen {
		t.Errorf("post-mutation generation = %d, want %d", info.Generation, gen)
	}
	want, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Error("post-mutation cache results diverge from uncached search")
	}
	_ = before
}

// TestCacheEquivalenceUnderMutations replays mutation batches and checks
// after every generation that the cache's miss AND hit are byte-identical
// to the uncached search — the cached flavour of the rebuild-equivalence
// property.
func TestCacheEquivalenceUnderMutations(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	mutations := []Mutation{
		{Ops: []Op{Delete("DEPENDENT", map[string]any{"ID": "t2"})}},
		{Ops: []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"L_NAME": "Smithson"})}},
		{Ops: []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"L_NAME": "Smith"})}},
	}
	check := func(genLabel string) {
		for i, keywords := range [][]string{{"Smith", "XML"}, {"Alice", "XML"}, {"databases"}} {
			q := Query{Keywords: keywords, MaxJoins: 3}
			want, err := engine.Search(ctx, q)
			if err != nil {
				t.Fatalf("%s query %d: %v", genLabel, i, err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := cache.Search(ctx, q)
				if err != nil {
					t.Fatalf("%s query %d pass %d: %v", genLabel, i, pass, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s query %d pass %d: cached diverges from uncached", genLabel, i, pass)
				}
			}
		}
	}
	check("gen0")
	for bi, m := range mutations {
		if _, err := engine.Apply(ctx, m); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		check(fmt.Sprintf("gen%d", bi+1))
	}
}

// TestCacheBypassCustomLabeler: a query with its own labeler cannot be
// keyed; it must bypass the cache and still answer correctly.
func TestCacheBypassCustomLabeler(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Labeler: PaperLabeler()}
	want, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, info, err := cache.SearchInfo(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if info.Hit {
			t.Error("custom-labeler query hit the cache")
		}
		if !reflect.DeepEqual(got, want) {
			t.Error("bypassed query diverges from uncached search")
		}
	}
	st := cache.Stats()
	if st.Bypasses != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 bypasses and no entries", st)
	}
}

// TestCacheErrorsNotCached: failed searches must not populate the cache.
func TestCacheErrorsNotCached(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith"}, Engine: "no-such-engine"}
	for i := 0; i < 2; i++ {
		if _, err := cache.Search(ctx, q); err == nil {
			t.Fatal("unknown engine did not fail")
		}
	}
	st := cache.Stats()
	if st.Misses != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 misses and no cached entries", st)
	}
	if _, err := cache.Search(ctx, Query{}); err == nil {
		t.Fatal("empty query did not fail")
	}
}

// TestCacheMutatingAHitIsSafe: results handed out are deep copies — a
// caller scribbling over a hit must not corrupt the stored entry.
func TestCacheMutatingAHitIsSafe(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}
	want, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cache.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no results to scribble on")
	}
	first[0].Connection = "VANDALIZED"
	if len(first[0].Tuples) > 0 {
		first[0].Tuples[0] = "VANDALIZED"
	}
	for k := range first[0].MatchedKeywords {
		first[0].MatchedKeywords[k] = []string{"VANDALIZED"}
	}
	second, err := cache.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Error("stored entry was corrupted by a caller's mutation")
	}
}

// slowSearcher blocks every Stream call until released, counting entries;
// it makes singleflight behaviour observable.
type slowSearcher struct {
	calls   atomic.Int64
	release chan struct{}
}

func (s *slowSearcher) Stream(ctx context.Context, _ Query, _ func(Answer) bool) error {
	s.calls.Add(1)
	select {
	case <-s.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestCacheSingleflightCollapse: concurrent identical misses run ONE
// search; the rest wait and share its result.
func TestCacheSingleflightCollapse(t *testing.T) {
	slow := &slowSearcher{release: make(chan struct{})}
	RegisterEngine("test-slow-cache", func(Components) (Searcher, error) { return slow, nil })
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith"}, Engine: "test-slow-cache"}

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cache.Search(ctx, q); err != nil {
				errs <- err
			}
		}()
	}
	// Wait until every follower is parked on the leader's flight, then
	// release the leader.
	deadline := time.Now().Add(10 * time.Second)
	for cache.Stats().Collapses < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("collapses = %d, want %d", cache.Stats().Collapses, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(slow.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := slow.calls.Load(); got != 1 {
		t.Errorf("searcher ran %d times, want 1 (singleflight)", got)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Collapses != callers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d collapses", st, callers-1)
	}
}

// failOnceSearcher fails its first call (once cancelled) and succeeds
// afterwards, so follower fallback is observable.
type failOnceSearcher struct {
	calls   atomic.Int64
	entered chan struct{}
}

func (s *failOnceSearcher) Stream(ctx context.Context, _ Query, _ func(Answer) bool) error {
	if s.calls.Add(1) == 1 {
		close(s.entered)
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// TestCacheCollapsedFollowerSurvivesLeaderFailure: when the leader's search
// fails (e.g. its caller cancelled), followers re-run the query themselves
// instead of inheriting the failure.
func TestCacheCollapsedFollowerSurvivesLeaderFailure(t *testing.T) {
	s := &failOnceSearcher{entered: make(chan struct{})}
	RegisterEngine("test-fail-once", func(Components) (Searcher, error) { return s, nil })
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	q := Query{Keywords: []string{"Smith"}, Engine: "test-fail-once"}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := cache.Search(leaderCtx, q)
		leaderErr <- err
	}()
	<-s.entered

	followerErr := make(chan error, 1)
	go func() {
		_, err := cache.Search(context.Background(), q)
		followerErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for cache.Stats().Collapses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never collapsed onto the leader")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Error("cancelled leader reported success")
	}
	if err := <-followerErr; err != nil {
		t.Errorf("follower inherited the leader's failure: %v", err)
	}
	if got := s.calls.Load(); got != 2 {
		t.Errorf("searcher ran %d times, want 2 (leader + follower fallback)", got)
	}
	// The fallback is reclassified: both calls ran searches, none was
	// served without one.
	if st := cache.Stats(); st.Misses != 2 || st.Collapses != 0 || st.HitRate() != 0 {
		t.Errorf("stats = %+v, want 2 misses, 0 collapses, hit rate 0", st)
	}
}

// TestCacheLRUEvictionBounds: the cache never exceeds its byte budget, and
// filling it evicts from the cold end while the hot end stays resident.
func TestCacheLRUEvictionBounds(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	// One shard so the LRU order is global and observable; a budget of a
	// few entries.
	probe, err := engine.Search(context.Background(), Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	entryCost := resultsBytes(probe)
	cache := NewCache(engine, CacheOptions{MaxBytes: 3*entryCost + 200, Shards: 1})
	ctx := context.Background()

	// Distinct keys via TopK: same work, different normalized queries.
	const distinct = 10
	for k := 1; k <= distinct; k++ {
		if _, err := cache.Search(ctx, Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: k}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
	if st.Entries >= distinct {
		t.Errorf("entries = %d, want bounded below %d", st.Entries, distinct)
	}
	// The most recent key must still be resident...
	if _, info, err := cache.SearchInfo(ctx, Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: distinct}); err != nil || !info.Hit {
		t.Errorf("most recent entry evicted (hit=%v err=%v)", info.Hit, err)
	}
	// ...and the coldest one gone.
	if _, info, err := cache.SearchInfo(ctx, Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: 1}); err != nil || info.Hit {
		t.Errorf("coldest entry survived (hit=%v err=%v)", info.Hit, err)
	}
}

// TestCacheOversizedResultNotStored: a result set larger than a whole shard
// is served but never cached.
func TestCacheOversizedResultNotStored(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{MaxBytes: 64, Shards: 1})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}
	for i := 0; i < 2; i++ {
		if _, info, err := cache.SearchInfo(ctx, q); err != nil || info.Hit {
			t.Fatalf("pass %d: hit=%v err=%v, want computed miss", i, info.Hit, err)
		}
	}
	st := cache.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized entry was stored: %+v", st)
	}
	if st.Bypasses != 2 {
		t.Errorf("bypasses = %d, want 2", st.Bypasses)
	}
}

// TestCacheRacingApply: readers hammer the cache while a writer publishes
// generations. Two invariants: (1) a call never answers from a generation
// older than the one current when it entered; (2) whenever the expected
// output of the answering generation is known, the answer is byte-identical
// to it. Run with -race -cpu=1,4.
func TestCacheRacingApply(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(engine, CacheOptions{})
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}

	// expected[gen] is the uncached Search output of generation gen,
	// recorded by the single writer right after publishing it (no other
	// writer exists, so the engine stays on gen while it is computed).
	var expected sync.Map
	base, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	expected.Store(uint64(0), base)

	const (
		readers = 4
		rounds  = 30
	)
	stop := make(chan struct{})
	var verified atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				genBefore := engine.Generation()
				results, info, err := cache.SearchInfo(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if info.Generation < genBefore {
					errs <- fmt.Errorf("answered from generation %d, pinned at least %d", info.Generation, genBefore)
					return
				}
				if want, ok := expected.Load(info.Generation); ok {
					if !reflect.DeepEqual(results, want.([]Result)) {
						errs <- fmt.Errorf("generation %d: cached answer diverges from its recorded output", info.Generation)
						return
					}
					verified.Add(1)
				}
			}
		}()
	}
	names := [2]string{"Smith", "Smythe"}
	for i := 0; i < rounds; i++ {
		gen, err := engine.Apply(ctx, Mutation{Ops: []Op{
			Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"L_NAME": names[(i+1)%2]}),
		}})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		want, err := engine.Search(ctx, q)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		expected.Store(gen, want)
	}
	// On a single CPU the writer can finish before the readers ever run;
	// keep them going until some observations verified against a recorded
	// generation (the final one stays recorded, so this terminates).
	deadline := time.Now().Add(10 * time.Second)
	for verified.Load() < readers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if verified.Load() == 0 {
		t.Error("no reader observation could be verified against a recorded generation")
	}
	// Final state: a fresh lookup must match the last generation exactly.
	final, info, err := cache.SearchInfo(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := expected.Load(engine.Generation())
	if info.Generation != engine.Generation() || !reflect.DeepEqual(final, want.([]Result)) {
		t.Error("final cache state diverges from the last generation")
	}
}
