package kws

import (
	"context"
	"testing"

	"repro/internal/paperdb"
	"repro/internal/relation"
)

// TestTouchedShardsDerivation pins the lease-set derivation: each op leases
// exactly its owner shard (plus the moved-to shard of a primary-key-rewriting
// update), the set is ascending, and every underivable op — unknown table,
// malformed selector, NULLed key column, unknown kind — falls back to
// leasing everything so staging reports the precise error.
func TestTouchedShardsDerivation(t *testing.T) {
	e, err := New(&Database{db: paperdb.MustLoad()}, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	p := e.group.Partitioner()
	owner := func(table, key string) int {
		return p.Owner(relation.TupleID{Relation: table, Key: key})
	}
	encoded := func(vals ...relation.Value) string { return relation.EncodeKey(vals) }

	row := map[string]any{"SSN": "e9", "L_NAME": "Hopper", "S_NAME": "Grace", "D_ID": "d1"}
	cases := []struct {
		name string
		ops  []Op
		want []int
		ok   bool
	}{
		{"insert", []Op{Insert("EMPLOYEE", row)},
			[]int{owner("EMPLOYEE", encoded(relation.String("e9")))}, true},
		{"delete", []Op{Delete("DEPENDENT", map[string]any{"ID": "t2"})},
			[]int{owner("DEPENDENT", encoded(relation.String("t2")))}, true},
		{"update off-key", []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"L_NAME": "Smythe"})},
			[]int{owner("EMPLOYEE", encoded(relation.String("e1")))}, true},
		{"update moving key", []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"SSN": "e1m"})},
			dedupSorted(owner("EMPLOYEE", encoded(relation.String("e1"))), owner("EMPLOYEE", encoded(relation.String("e1m")))), true},
		{"update keeping key", []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"SSN": "e1"})},
			[]int{owner("EMPLOYEE", encoded(relation.String("e1")))}, true},
		{"unknown table", []Op{Delete("NOSUCH", map[string]any{"ID": "x"})}, nil, false},
		{"insert missing key column", []Op{Insert("EMPLOYEE", map[string]any{"L_NAME": "NoKey"})}, nil, false},
		{"delete malformed selector", []Op{Delete("EMPLOYEE", map[string]any{"WRONG": "e1"})}, nil, false},
		{"update of absent tuple moving key", []Op{Update("EMPLOYEE", map[string]any{"SSN": "nosuch"}, map[string]any{"SSN": "moved"})}, nil, false},
		{"update nulling key column", []Op{Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"SSN": nil})}, nil, false},
		{"unknown kind", []Op{{Kind: OpKind(99), Table: "EMPLOYEE"}}, nil, false},
	}
	for _, tc := range cases {
		got, ok := e.touchedShards(Mutation{Ops: tc.ops})
		if ok != tc.ok {
			t.Fatalf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: touched %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: touched %v, want %v", tc.name, got, tc.want)
			}
			if i > 0 && got[i] <= got[i-1] {
				t.Fatalf("%s: touched set %v is not strictly ascending", tc.name, got)
			}
		}
	}
}

func dedupSorted(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if a < b {
		return []int{a, b}
	}
	return []int{b, a}
}

// TestShardedPKMovingUpdate drives a primary-key-rewriting update — the op
// whose lease set spans two shards — end to end at every swept count and
// byte-compares the result surfaces against the unsharded reference.
func TestShardedPKMovingUpdate(t *testing.T) {
	ctx := context.Background()
	reference, err := New(&Database{db: paperdb.MustLoad()})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"SSN": "e1moved"}),
		Insert("EMPLOYEE", map[string]any{"SSN": "e9", "L_NAME": "Hopper", "S_NAME": "Grace", "D_ID": "d1"}),
	}
	wantGen, err := reference.Apply(ctx, Mutation{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardSweep {
		e, err := New(&Database{db: paperdb.MustLoad()}, WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		gen, err := e.Apply(ctx, Mutation{Ops: ops})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if gen != wantGen {
			t.Fatalf("shards=%d: generation %d, reference %d", n, gen, wantGen)
		}
		requireShardedOutputEqual(t, 0, n, reference, e)
	}
}
