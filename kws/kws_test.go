package kws

import (
	"bytes"
	"strings"
	"testing"
)

// bookstore builds a small custom database through the public API.
func bookstore(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("bookstore")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.AddTable(TableSpec{
		Name: "AUTHOR",
		Columns: []ColumnSpec{
			{Name: "ID", Type: "string"},
			{Name: "NAME", Type: "string"},
			{Name: "BIO", Type: "text", Nullable: true},
		},
		PrimaryKey: []string{"ID"},
	}))
	must(db.AddTable(TableSpec{
		Name: "BOOK",
		Columns: []ColumnSpec{
			{Name: "ID", Type: "string"},
			{Name: "TITLE", Type: "string"},
			{Name: "ABSTRACT", Type: "text", Nullable: true},
			{Name: "YEAR", Type: "int", Nullable: true},
		},
		PrimaryKey: []string{"ID"},
	}))
	must(db.AddTable(TableSpec{
		Name: "WROTE",
		Columns: []ColumnSpec{
			{Name: "AUTHOR_ID", Type: "string"},
			{Name: "BOOK_ID", Type: "string"},
		},
		PrimaryKey: []string{"AUTHOR_ID", "BOOK_ID"},
		ForeignKeys: []ForeignKeySpec{
			{Name: "wrote_author", Columns: []string{"AUTHOR_ID"}, RefTable: "AUTHOR", RefColumns: []string{"ID"}},
			{Name: "wrote_book", Columns: []string{"BOOK_ID"}, RefTable: "BOOK", RefColumns: []string{"ID"}},
		},
	}))
	must(db.Insert("AUTHOR", map[string]any{"ID": "a1", "NAME": "Codd", "BIO": "relational model pioneer"}))
	must(db.Insert("AUTHOR", map[string]any{"ID": "a2", "NAME": "Gray", "BIO": "transactions and databases"}))
	must(db.Insert("BOOK", map[string]any{"ID": "b1", "TITLE": "Relational Databases", "ABSTRACT": "foundations of the relational model", "YEAR": 1980}))
	must(db.Insert("BOOK", map[string]any{"ID": "b2", "TITLE": "Transaction Processing", "ABSTRACT": "concepts and techniques for transactions", "YEAR": 1992}))
	must(db.Insert("WROTE", map[string]any{"AUTHOR_ID": "a1", "BOOK_ID": "b1"}))
	must(db.Insert("WROTE", map[string]any{"AUTHOR_ID": "a2", "BOOK_ID": "b2"}))
	return db
}

func TestDatabaseBuildingAndValidation(t *testing.T) {
	db := bookstore(t)
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := db.Tables(); len(got) != 3 || got[0] != "AUTHOR" {
		t.Errorf("Tables = %v", got)
	}
	if db.TupleCount() != 6 {
		t.Errorf("TupleCount = %d", db.TupleCount())
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Codd") {
		t.Error("Dump missing data")
	}
}

func TestDatabaseErrors(t *testing.T) {
	db := NewDatabase("x")
	if err := db.AddTable(TableSpec{Name: "T", Columns: []ColumnSpec{{Name: "A", Type: "blob"}}, PrimaryKey: []string{"A"}}); err == nil {
		t.Error("unknown column type should fail")
	}
	if err := db.Insert("NOPE", map[string]any{"A": 1}); err == nil {
		t.Error("insert into unknown table should fail")
	}
	if err := db.AddTable(TableSpec{Name: "T", Columns: []ColumnSpec{{Name: "A", Type: "string"}}, PrimaryKey: []string{"A"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", map[string]any{"B": "x"}); err == nil {
		t.Error("insert with unknown column should fail")
	}
	if err := db.Insert("T", map[string]any{"A": struct{}{}}); err == nil {
		t.Error("unsupported value type should fail")
	}
	// Dangling reference is caught by Validate.
	if err := db.AddTable(TableSpec{
		Name:       "U",
		Columns:    []ColumnSpec{{Name: "ID", Type: "string"}, {Name: "T_A", Type: "string"}},
		PrimaryKey: []string{"ID"},
		ForeignKeys: []ForeignKeySpec{
			{Columns: []string{"T_A"}, RefTable: "T", RefColumns: []string{"A"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("U", map[string]any{"ID": "u1", "T_A": "missing"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err == nil {
		t.Error("Validate should report the dangling reference")
	}
}

func TestOpenAndSearchPaperExample(t *testing.T) {
	engine, err := Open(PaperExample(), Config{Ranking: RankCloseFirst, MaxJoins: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	results, err := engine.Search("Smith", "XML")
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d, want 7 (connections 1-7)", len(results))
	}
	// Ranks are 1..n and scores non-decreasing.
	for i, r := range results {
		if r.Rank != i+1 {
			t.Errorf("rank %d at position %d", r.Rank, i)
		}
		if i > 0 && results[i-1].Score > r.Score {
			t.Error("scores not non-decreasing")
		}
	}
	// Under close-first the top results are the close associations.
	for _, r := range results[:3] {
		if !r.Close {
			t.Errorf("top result %q is not close", r.Connection)
		}
	}
	// The annotations of the best result (connection 1 or 5) are correct.
	top := results[0]
	if top.RDBLength != 1 || top.ERLength != 1 || top.Class != "immediate" || !top.CorroboratedAtInstance {
		t.Errorf("top result = %+v", top)
	}
	if len(top.Tuples) != 2 {
		t.Errorf("top result tuples = %v", top.Tuples)
	}
	if len(top.MatchedKeywords) != 2 {
		t.Errorf("top result matches = %v", top.MatchedKeywords)
	}
	// The rendering includes the join cardinality (1:N or N:1 depending on
	// the direction the connection was enumerated in).
	if !strings.Contains(top.ConnectionWithCardinalities, "1:N") && !strings.Contains(top.ConnectionWithCardinalities, "N:1") {
		t.Errorf("cardinalities rendering = %q", top.ConnectionWithCardinalities)
	}
}

func TestSearchRankingStrategies(t *testing.T) {
	for _, strategy := range []RankStrategy{RankRDBLength, RankERLength, RankCloseFirst, RankLoosenessPenalty, RankHubPenalty, RankCombined} {
		engine, err := Open(PaperExample(), Config{Ranking: strategy, MaxJoins: 3})
		if err != nil {
			t.Fatalf("Open(%s): %v", strategy, err)
		}
		results, err := engine.Search("Smith", "XML")
		if err != nil {
			t.Fatalf("Search(%s): %v", strategy, err)
		}
		if len(results) != 7 {
			t.Errorf("%s: results = %d", strategy, len(results))
		}
	}
	// ER length promotes connection 2 into the top ranks. The paper labels
	// (w_f1, ...) are opt-in now, through the Labeler option.
	engine, _ := Open(PaperExample(), Config{Ranking: RankERLength, MaxJoins: 3, Labeler: PaperLabeler()})
	results, _ := engine.Search("Smith", "XML")
	top3 := results[:3]
	found := false
	for _, r := range top3 {
		if strings.Contains(r.Connection, "w_f1") {
			found = true
		}
	}
	if !found {
		t.Errorf("ER ranking should place connection 2 in the top 3: %+v", top3)
	}
}

func TestSearchEngineChoices(t *testing.T) {
	// The MTJNT engine returns fewer answers than the paths engine.
	pathsEngine, err := Open(PaperExample(), Config{Engine: EnginePaths, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	mtjntEngine, err := Open(PaperExample(), Config{Engine: EngineMTJNT, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	banksEngine, err := Open(PaperExample(), Config{Engine: EngineBANKS, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := pathsEngine.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	ma, err := mtjntEngine.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := banksEngine.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) >= len(pa) {
		t.Errorf("MTJNT (%d answers) should return fewer answers than paths (%d)", len(ma), len(pa))
	}
	if len(ba) == 0 {
		t.Error("BANKS returned no answers")
	}
	// Every MTJNT answer is also found by the paths engine.
	pathSet := make(map[string]bool, len(pa))
	for _, r := range pa {
		pathSet[r.Connection] = true
	}
	for _, r := range ma {
		if !pathSet[r.Connection] {
			t.Errorf("MTJNT answer %q missing from paths answers", r.Connection)
		}
	}
}

func TestSearchCustomDatabase(t *testing.T) {
	engine, err := Open(bookstore(t), Config{MaxJoins: 3, Ranking: RankERLength})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Search("Codd", "relational")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results on the bookstore database")
	}
	// The best answer connects the author Codd to the relational book
	// through the WROTE junction: 2 joins in the RDB, 1 at the ER level.
	var best *Result
	for i := range results {
		if strings.Contains(results[i].Connection, "AUTHOR[a1]") && results[i].RDBLength == 2 {
			best = &results[i]
			break
		}
	}
	// a1's BIO itself contains "relational", so the single tuple a1 also
	// answers the query; accept either but require the junction answer to
	// exist with ER length 1.
	if best == nil {
		t.Fatalf("missing the AUTHOR-WROTE-BOOK answer: %+v", results)
	}
	if best.ERLength != 1 || best.Class != "immediate" {
		t.Errorf("junction answer analysis = %+v", best)
	}
}

func TestTopKAndMatchAndStats(t *testing.T) {
	engine, err := Open(PaperExample(), Config{MaxJoins: 3, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("TopK results = %d", len(results))
	}
	matches := engine.Match("XML")
	if len(matches) != 4 {
		t.Errorf("Match(XML) = %v", matches)
	}
	rels, tuples, edges := engine.Stats()
	if rels != 5 || tuples != 16 || edges != 17 {
		t.Errorf("Stats = %d, %d, %d", rels, tuples, edges)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(nil, Config{}); err == nil {
		t.Error("Open(nil) should fail")
	}
	if _, err := Open(PaperExample(), Config{Ranking: "bogus"}); err == nil {
		t.Error("unknown ranking should fail")
	}
	if _, err := Open(PaperExample(), Config{Engine: "bogus"}); err == nil {
		t.Error("unknown engine should fail")
	}
	engine, err := Open(PaperExample(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Search(); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := engine.Search("nonexistentkeyword", "XML"); err == nil {
		t.Error("unmatched keyword should fail under AND semantics")
	}
}

func TestSyntheticCompanyFixture(t *testing.T) {
	db := SyntheticCompany(1, 5)
	if db.TupleCount() == 0 {
		t.Fatal("synthetic database is empty")
	}
	engine, err := Open(db, Config{MaxJoins: 3, DisableInstanceChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	// At least one topic keyword yields matches.
	if len(engine.Match("XML")) == 0 && len(engine.Match("databases")) == 0 {
		t.Error("synthetic database has no searchable topics")
	}
}
