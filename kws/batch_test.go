package kws_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/kws"
)

func batchEngine(t *testing.T, opts ...kws.Option) *kws.Engine {
	t.Helper()
	e, err := kws.New(kws.PaperExample(), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// TestSearchBatchMatchesSearch asserts that a batch returns, per slot,
// exactly what an individual Search of that query returns — same results,
// same order — for several parallelism settings.
func TestSearchBatchMatchesSearch(t *testing.T) {
	queries := []kws.Query{
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3},
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Engine: kws.EngineMTJNT},
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Engine: kws.EngineBANKS},
		{Keywords: []string{"Alice", "XML"}, MaxJoins: 3, Ranking: kws.RankERLength},
		{Keywords: []string{"Smith"}, TopK: 2},
	}
	for _, parallelism := range []int{0, 1, 4} {
		e := batchEngine(t, kws.WithParallelism(parallelism))
		ctx := context.Background()
		got := e.SearchBatch(ctx, queries)
		if len(got) != len(queries) {
			t.Fatalf("parallelism=%d: batch returned %d entries for %d queries", parallelism, len(got), len(queries))
		}
		for i, q := range queries {
			want, err := e.Search(ctx, q)
			if err != nil {
				t.Fatalf("parallelism=%d: Search(%v): %v", parallelism, q.Keywords, err)
			}
			if got[i].Err != nil {
				t.Fatalf("parallelism=%d: batch entry %d failed: %v", parallelism, i, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Results, want) {
				t.Errorf("parallelism=%d: batch entry %d differs from individual Search", parallelism, i)
			}
		}
	}
}

// TestSearchBatchReportsPerQueryErrors asserts that invalid queries fail
// their own slot without poisoning the rest of the batch.
func TestSearchBatchReportsPerQueryErrors(t *testing.T) {
	e := batchEngine(t)
	got := e.SearchBatch(context.Background(), []kws.Query{
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3},
		{}, // empty keyword list
		{Keywords: []string{"Smith"}, Engine: "no-such-engine"},
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3},
	})
	if got[0].Err != nil || got[3].Err != nil {
		t.Fatalf("valid queries failed: %v, %v", got[0].Err, got[3].Err)
	}
	if got[1].Err == nil {
		t.Error("empty query did not report an error")
	}
	if got[2].Err == nil {
		t.Error("unknown engine did not report an error")
	}
	if !reflect.DeepEqual(got[0].Results, got[3].Results) {
		t.Error("identical queries in one batch returned different results")
	}
	if len(got[0].Results) == 0 {
		t.Error("valid query returned no results")
	}
}

// TestSearchBatchConcurrent hammers one engine with concurrent batches (and
// interleaved single searches); run under -race this is the batch-serving
// race test.
func TestSearchBatchConcurrent(t *testing.T) {
	e := batchEngine(t, kws.WithParallelism(4))
	queries := []kws.Query{
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3},
		{Keywords: []string{"Alice", "XML"}, MaxJoins: 3},
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Engine: kws.EngineBANKS},
		{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Engine: kws.EngineMTJNT},
	}
	ctx := context.Background()
	want := e.SearchBatch(ctx, queries)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				if g%2 == 0 {
					got := e.SearchBatch(ctx, queries)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("goroutine %d: concurrent batch diverged", g)
						return
					}
				} else {
					if _, err := e.Search(ctx, queries[rep%len(queries)]); err != nil {
						t.Errorf("goroutine %d: Search: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSearchBatchCancellation asserts that a cancelled context marks every
// unfinished slot with ctx.Err() instead of returning silent empties.
func TestSearchBatchCancellation(t *testing.T) {
	e := batchEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := make([]kws.Query, 16)
	for i := range queries {
		queries[i] = kws.Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}
	}
	got := e.SearchBatch(ctx, queries)
	if len(got) != len(queries) {
		t.Fatalf("batch returned %d entries for %d queries", len(got), len(queries))
	}
	for i, r := range got {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("entry %d: Err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestParallelQueryMatchesSequential asserts that per-query parallelism is
// invisible in the ranked output across all three engines.
func TestParallelQueryMatchesSequential(t *testing.T) {
	e := batchEngine(t)
	ctx := context.Background()
	for _, kind := range []kws.EngineKind{kws.EnginePaths, kws.EngineMTJNT, kws.EngineBANKS} {
		base := kws.Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, Engine: kind}
		seqQ := base
		seqQ.Parallelism = 1
		seq, err := e.Search(ctx, seqQ)
		if err != nil {
			t.Fatalf("%s sequential: %v", kind, err)
		}
		for _, workers := range []int{2, 8} {
			parQ := base
			parQ.Parallelism = workers
			par, err := e.Search(ctx, parQ)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
			if !reflect.DeepEqual(par, seq) {
				t.Errorf("%s workers=%d: results differ from sequential", kind, workers)
			}
		}
	}
}
