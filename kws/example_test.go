package kws_test

import (
	"context"
	"fmt"

	"repro/kws"
)

// ExampleEngine_Search runs the paper's running query — which employees
// named Smith connect to something about XML? — and prints the ranked
// connections with their association verdicts.
func ExampleEngine_Search() {
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(kws.PaperLabeler()))
	if err != nil {
		panic(err)
	}
	results, err := engine.Search(context.Background(), kws.Query{
		Keywords: []string{"Smith", "XML"},
		Ranking:  kws.RankCloseFirst,
		MaxJoins: 3,
		TopK:     3,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%d. %s close=%v\n", r.Rank, r.Connection, r.Close)
	}
	// Output:
	// 1. e1(Smith) - d1(XML) close=true
	// 2. e2(Smith) - d2(XML) close=true
	// 3. e1(Smith) - w_f1 - p1(XML) close=true
}

// ExampleEngine_Apply mutates the live engine: the insert publishes a new
// generation, immediately searchable, without rebuilding the graph or the
// index.
func ExampleEngine_Apply() {
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(kws.PaperLabeler()))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	gen, err := engine.Apply(ctx, kws.Mutation{Ops: []kws.Op{
		kws.Insert("EMPLOYEE", map[string]any{
			"SSN": "e5", "L_NAME": "Turing", "S_NAME": "Alan", "D_ID": "d1",
		}),
	}})
	if err != nil {
		panic(err)
	}
	fmt.Println("generation:", gen)
	fmt.Println("matches:", engine.Match("Turing"))
	// Output:
	// generation: 1
	// matches: [e5]
}

// ExampleEngine_sharded partitions the engine into three scatter-gather
// shards. Search output is byte-identical to the unsharded engine; what
// changes is the commit bookkeeping: a mutation advances only the vector
// entries of the shards it touches.
func ExampleEngine_sharded() {
	engine, err := kws.New(kws.PaperExample(),
		kws.WithLabeler(kws.PaperLabeler()),
		kws.WithShards(3),
	)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	results, err := engine.Search(ctx, kws.Query{
		Keywords: []string{"Smith", "XML"},
		Ranking:  kws.RankCloseFirst,
		MaxJoins: 3,
		TopK:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("top:", results[0].Connection)

	// One insert touches one shard: the composed generation advances by
	// one, and exactly one vector entry moves with it.
	gen, err := engine.Apply(ctx, kws.Mutation{Ops: []kws.Op{
		kws.Insert("EMPLOYEE", map[string]any{
			"SSN": "e5", "L_NAME": "Turing", "S_NAME": "Alan", "D_ID": "d1",
		}),
	}})
	if err != nil {
		panic(err)
	}
	var touched int
	for _, g := range engine.GenerationVector() {
		touched += int(g)
	}
	fmt.Println("generation:", gen)
	fmt.Println("vector entries advanced:", touched)
	// Output:
	// top: e1(Smith) - d1(XML)
	// generation: 1
	// vector entries advanced: 1
}

// ExampleCache fronts an engine with the generation-keyed result cache: the
// second identical query is a hit, and a mutation implicitly invalidates it
// by publishing a new generation.
func ExampleCache() {
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(kws.PaperLabeler()))
	if err != nil {
		panic(err)
	}
	cache := kws.NewCache(engine, kws.CacheOptions{MaxBytes: 1 << 20})
	ctx := context.Background()
	q := kws.Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}

	if _, info, err := cache.SearchInfo(ctx, q); err == nil {
		fmt.Printf("first: hit=%v generation=%d\n", info.Hit, info.Generation)
	}
	if _, info, err := cache.SearchInfo(ctx, q); err == nil {
		fmt.Printf("second: hit=%v generation=%d\n", info.Hit, info.Generation)
	}
	// A mutation publishes generation 1; the cached generation-0 entry is
	// simply never looked up again.
	if _, err := engine.Apply(ctx, kws.Mutation{Ops: []kws.Op{
		kws.Delete("DEPENDENT", map[string]any{"ID": "t2"}),
	}}); err != nil {
		panic(err)
	}
	if _, info, err := cache.SearchInfo(ctx, q); err == nil {
		fmt.Printf("after mutation: hit=%v generation=%d\n", info.Hit, info.Generation)
	}
	st := cache.Stats()
	fmt.Printf("hits=%d misses=%d\n", st.Hits, st.Misses)
	// Output:
	// first: hit=false generation=0
	// second: hit=true generation=0
	// after mutation: hit=false generation=1
	// hits=1 misses=2
}
