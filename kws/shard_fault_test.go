package kws

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/paperdb"
	"repro/internal/relation"
	"repro/internal/store"
)

// The sharded durability property: recovery from the per-shard stores must
// land on a consistent generation vector — the newest committed one —
// covering every acknowledged batch, with the composed state byte-identical
// to a fresh build over the mirror replayed to that point, no matter where a
// crash struck. The matrix below injects sticky faults into individual shard
// stores at every crash point and re-opens the layout cold.

// requireRecoveredEquivalent checks a recovered sharded engine against a
// fresh build over the mirror. Recovery composes the per-shard states
// canonically — tuples ascending by ID within each table — so the seed
// database's insertion order is not reconstructible from per-shard logs.
// That is by design: every rendered surface orders in the string space, not
// by table position. The relational comparison therefore treats each table
// as an ID-keyed set, while the graph adjacency, index postings and full
// search output — all string-space ordered — must still match the fresh
// build byte for byte.
func requireRecoveredEquivalent(t *testing.T, batch int, recovered *Engine, mirror *relation.Database) {
	t.Helper()
	fresh, err := New(&Database{db: mirror})
	if err != nil {
		t.Fatalf("batch %d: fresh build: %v", batch, err)
	}
	lc := recovered.current().comp
	fc := fresh.current().comp

	// Relational state as sets: same tuple IDs, same values, any order.
	for _, name := range mirror.TableNames() {
		lt, _ := lc.DB.Table(name)
		ft, _ := fc.DB.Table(name)
		if lt.Len() != ft.Len() {
			t.Fatalf("batch %d: table %s has %d tuples, mirror has %d", batch, name, lt.Len(), ft.Len())
		}
		if got, want := tupleSet(lt), tupleSet(ft); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: table %s tuple set diverged:\nrecovered: %v\nmirror:    %v", batch, name, got, want)
		}
	}

	// Graph adjacency and index postings render in the string space, so they
	// must be byte-identical regardless of the underlying insertion order.
	if lc.Graph.EdgeCount() != fc.Graph.EdgeCount() || lc.Graph.NodeCount() != fc.Graph.NodeCount() {
		t.Fatalf("batch %d: graph size %d nodes / %d edges, fresh %d / %d", batch,
			lc.Graph.NodeCount(), lc.Graph.EdgeCount(), fc.Graph.NodeCount(), fc.Graph.EdgeCount())
	}
	if got, want := graphDump(lc.Graph), graphDump(fc.Graph); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch %d: graph adjacency diverged from fresh build", batch)
	}
	if lc.Index.DocCount() != fc.Index.DocCount() || lc.Index.TermCount() != fc.Index.TermCount() {
		t.Fatalf("batch %d: index size %d docs / %d terms, fresh %d / %d", batch,
			lc.Index.DocCount(), lc.Index.TermCount(), fc.Index.DocCount(), fc.Index.TermCount())
	}
	if got, want := lc.Index.Dump(), fc.Index.Dump(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch %d: index postings diverged from fresh build", batch)
	}

	ctx := context.Background()
	for _, kws := range equivalenceQueries {
		q := Query{Keywords: kws, MaxJoins: 4}
		got, gotErr := recovered.Search(ctx, q)
		want, wantErr := fresh.Search(ctx, q)
		if !errTextEqual(gotErr, wantErr) {
			t.Fatalf("batch %d: query %v: err %q, fresh %q", batch, kws, errText(gotErr), errText(wantErr))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: query %v diverged from fresh build:\nrecovered: %v\nfresh:     %v",
				batch, kws, renders(got), renders(want))
		}
	}
}

// tupleSet renders a table as an ID-keyed set of tuple values.
func tupleSet(tb *relation.Table) map[relation.TupleID]string {
	out := make(map[relation.TupleID]string, tb.Len())
	for _, tup := range tb.Tuples() {
		out[tup.ID()] = tup.String()
	}
	return out
}

func openShardStores(t *testing.T, dir string, n int) *ShardStores {
	t.Helper()
	s, err := OpenShardedStore(dir, n)
	if err != nil {
		t.Fatalf("OpenShardedStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestShardedRecoverRoundTrip(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	ss := openShardStores(t, dir, shards)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(7)
	for b := 0; b < 6; b++ {
		if _, err := live.Apply(ctx, bm.next(t)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// The durable sharded engine keeps the equivalence property after
		// every batch, not just at the end.
		requireEngineEquivalent(t, b, live, bm.rebuilt(t, live.Generation()))
	}
	acked := live.Generation()
	vector := live.GenerationVector()
	ss.Close()

	// Restart: fresh handles over the same directory, fresh seed database.
	ss2 := openShardStores(t, dir, shards)
	recovered, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss2))
	if err != nil {
		t.Fatalf("recovering New: %v", err)
	}
	if recovered.Generation() != acked {
		t.Fatalf("recovered generation %d, want %d", recovered.Generation(), acked)
	}
	if got := recovered.GenerationVector(); !reflect.DeepEqual(got, vector) {
		t.Fatalf("recovered vector %v, want %v", got, vector)
	}
	requireRecoveredEquivalent(t, int(acked), recovered, bm.rebuilt(t, acked))

	// The recovered engine is fully live: the next batch continues the same
	// logs and keeps every property.
	if _, err := recovered.Apply(ctx, bm.next(t)); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	requireRecoveredEquivalent(t, int(acked)+1, recovered, bm.rebuilt(t, acked+1))
}

// TestShardedWithShardsCountMismatch pins the constructor contracts: a store
// layout opened with one count cannot serve another, and WithShards must
// agree with the layout when both are given.
func TestShardedWithShardsCountMismatch(t *testing.T) {
	dir := t.TempDir()
	ss := openShardStores(t, dir, 3)
	if _, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss), WithShards(4)); err == nil {
		t.Fatal("New accepted WithShards(4) over a 3-shard layout")
	}
	ss.Close()
	if _, err := OpenShardedStore(dir, 5); err == nil {
		t.Fatal("OpenShardedStore reopened a 3-shard layout as 5 shards")
	}
}

func TestShardedStoreExcludesWithStore(t *testing.T) {
	fs := openStore(t, t.TempDir())
	if _, err := New(&Database{db: paperdb.MustLoad()}, WithStore(fs), WithShards(2)); err == nil {
		t.Fatal("New accepted WithStore combined with WithShards")
	}
}

// TestShardedFaultMatrix wraps every shard store in a sticky FaultStore and
// crashes the shard-WAL append at each point, on each shard of a 3-shard
// engine. The faulted Apply must fail with ErrPersistence and publish
// nothing; cold recovery over the same directory must land exactly on the
// acknowledged generation with a consistent vector — in particular the
// post-append case, where a shard record IS durable but the vector commit
// never happened, so recovery must truncate it away (unlike the unsharded
// engine, where a durable record legally recovers one generation ahead).
func TestShardedFaultMatrix(t *testing.T) {
	const shards = 3
	points := []struct {
		name  string
		point store.CrashPoint
		torn  int
	}{
		{"pre-append", store.CrashPreAppend, 0},
		{"torn-append-empty", store.CrashTornAppend, 0},
		{"torn-append-header", store.CrashTornAppend, 5},
		{"torn-append-payload", store.CrashTornAppend, 12},
		{"post-append", store.CrashPostAppend, 0},
	}
	for _, tc := range points {
		for target := 0; target < shards; target++ {
			t.Run(fmt.Sprintf("%s/shard-%d", tc.name, target), func(t *testing.T) {
				dir := t.TempDir()
				ss := openShardStores(t, dir, shards)
				// Wrap every shard store so the fault fires no matter which
				// shard the faulted batch happens to touch; arm only the
				// target. Sticky: once fired, the store stays dead, like a
				// crashed disk, so no later write can smooth it over.
				faults := make([]*store.FaultStore, shards)
				for s := 0; s < shards; s++ {
					faults[s] = store.NewFaultStore(ss.Shard(s).(*store.FileStore))
					faults[s].Sticky = true
					ss.ReplaceShard(s, faults[s])
				}
				live, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss), WithSnapshotEvery(-1))
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				bm := newBatchMaker(23)
				for b := 0; b < 2; b++ {
					if _, err := live.Apply(ctx, bm.next(t)); err != nil {
						t.Fatalf("batch %d: %v", b, err)
					}
				}
				acked := live.Generation()
				vector := live.GenerationVector()

				// Fault the target shard and submit batches until one
				// touches it (the partitioner decides; batches missing the
				// target legitimately succeed and advance the engine).
				faults[target].Point, faults[target].TornBytes = tc.point, tc.torn
				faulted := false
				for b := 0; b < 16; b++ {
					gen, err := live.Apply(ctx, bm.next(t))
					if err != nil {
						if !errors.Is(err, ErrPersistence) {
							t.Fatalf("faulted Apply = %v, want ErrPersistence", err)
						}
						faulted = true
						break
					}
					acked, vector = gen, live.GenerationVector()
				}
				if !faulted {
					t.Fatalf("no batch touched shard %d in 16 tries", target)
				}
				if live.Generation() != acked {
					t.Fatalf("generation after faulted Apply = %d, want %d", live.Generation(), acked)
				}
				ss.Close()

				ss2 := openShardStores(t, dir, shards)
				recovered, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss2))
				if err != nil {
					t.Fatalf("recovering New: %v", err)
				}
				if recovered.Generation() != acked {
					t.Fatalf("recovered generation %d, want %d", recovered.Generation(), acked)
				}
				if got := recovered.GenerationVector(); !reflect.DeepEqual(got, vector) {
					t.Fatalf("recovered vector %v, want %v", got, vector)
				}
				requireRecoveredEquivalent(t, int(acked), recovered, bm.rebuilt(t, acked))
			})
		}
	}
}

// TestShardedCheckpointTruncatesAndRecovers checkpoints every shard and
// verifies the vector log compacts, the shard WALs truncate, and cold
// recovery replays nothing.
func TestShardedCheckpointTruncatesAndRecovers(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	ss := openShardStores(t, dir, shards)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(53)
	for b := 0; b < 4; b++ {
		if _, err := live.Apply(ctx, bm.next(t)); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ps, ok := live.PersistStats()
	if !ok {
		t.Fatal("PersistStats not ok on a durable sharded engine")
	}
	if ps.WALRecords != 0 {
		t.Fatalf("after Checkpoint: %d WAL records across shards, want 0", ps.WALRecords)
	}
	stats, ok := live.ShardStats()
	if !ok || len(stats) != shards {
		t.Fatalf("ShardStats = %v, %v; want %d shards", stats, ok, shards)
	}
	vector := live.GenerationVector()
	for s, st := range stats {
		if st.SnapshotGeneration != vector[s] {
			t.Fatalf("shard %d snapshot at generation %d, vector says %d", s, st.SnapshotGeneration, vector[s])
		}
	}
	acked := live.Generation()
	ss.Close()

	ss2 := openShardStores(t, dir, shards)
	recovered, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss2))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Generation() != acked {
		t.Fatalf("recovered generation %d, want %d", recovered.Generation(), acked)
	}
	if got := recovered.GenerationVector(); !reflect.DeepEqual(got, vector) {
		t.Fatalf("recovered vector %v, want %v", got, vector)
	}
	requireRecoveredEquivalent(t, int(acked), recovered, bm.rebuilt(t, acked))
}

// TestShardedSnapshotErrorDoesNotFailApply mirrors the unsharded property:
// an automatic per-shard checkpoint failure is counted, never surfaced.
func TestShardedSnapshotErrorDoesNotFailApply(t *testing.T) {
	const shards = 2
	ss := openShardStores(t, t.TempDir(), shards)
	faults := make([]*store.FaultStore, shards)
	for s := 0; s < shards; s++ {
		faults[s] = store.NewFaultStore(ss.Shard(s).(*store.FileStore))
		ss.ReplaceShard(s, faults[s])
	}
	live, err := New(&Database{db: paperdb.MustLoad()}, WithShardStores(ss), WithSnapshotEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	bm := newBatchMaker(41)
	for s := range faults {
		faults[s].Point = store.CrashMidSnapshot
	}
	gen, err := live.Apply(context.Background(), bm.next(t))
	if err != nil || gen != 1 {
		t.Fatalf("Apply = %d, %v; want generation 1 despite snapshot fault", gen, err)
	}
	ps, _ := live.PersistStats()
	if ps.SnapshotErrors != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", ps.SnapshotErrors)
	}
}
