// Package kws is the public API of the library: keyword search over
// relational (structural) data with close/loose association analysis, as
// described in "Close and Loose Associations in Keyword Search from
// Structural Data" (Vainio, Junkkari, Kekäläinen; EDBT/ICDT 2017 workshops).
//
// A Database is defined from table specifications (columns, primary keys and
// foreign keys) and filled with rows; an Engine searches it with keyword
// queries and returns connections of tuples ranked by configurable
// strategies, each annotated with its relational and conceptual (ER) length
// and its close/loose association verdict.
//
// One Engine is goroutine-safe and serves many concurrent queries; every
// option travels per call in the Query, and the context cancels long
// enumerations:
//
//	engine, _ := kws.New(kws.PaperExample(), kws.WithLabeler(kws.PaperLabeler()))
//	results, _ := engine.Search(ctx, kws.Query{
//		Keywords: []string{"Smith", "XML"},
//		Ranking:  kws.RankCloseFirst,
//		MaxJoins: 3,
//	})
//	for _, r := range results {
//		fmt.Println(r.Rank, r.Connection, r.Close, r.ERLength)
//	}
//
// Results can also be consumed incrementally, before the enumeration
// finishes, with Engine.Stream (callback) or Engine.Results (iterator);
// streamed results arrive unranked, in discovery order. Additional search
// engines and ranking strategies plug in through RegisterEngine and
// RegisterRanker. The deprecated Open / LegacyEngine.Search shim keeps the
// batch, frozen-configuration API of earlier releases compiling.
//
// # Concurrency and batching
//
// The whole stack is parallel by default and deterministic at every setting:
// kws.New builds the tuple graph and the inverted index concurrently (each
// fanning out per-table workers), BANKS runs its per-keyword expansions in
// parallel goroutines, and the paths engine fans its per-source enumerations
// across a bounded worker pool whose output order is identical to the
// sequential walk. Behind that enumeration the paths engine also pipelines
// answer annotation: the single-goroutine dedup stage feeds a bounded pool
// that runs the association analysis, the instance-level corroboration and
// the content scoring of many answers concurrently, and an order-preserving
// emitter delivers them in exactly the sequential order — so Search, Stream
// and SearchBatch all overlap the dominant per-answer cost without changing
// a byte of output. WithParallelism bounds all of it at the engine level and
// Query.Parallelism per call; 1 forces the fully sequential paths, which
// produce byte-identical results.
//
// Many queries are served in one call with Engine.SearchBatch, which runs up
// to the configured parallelism of them at once over the shared substrates
// and returns one BatchResult per query, in query order, with per-query
// errors:
//
//	engine, _ := kws.New(db, kws.WithParallelism(8))
//	for i, br := range engine.SearchBatch(ctx, queries) {
//		if br.Err != nil {
//			log.Printf("query %d: %v", i, br.Err)
//			continue
//		}
//		consume(br.Results)
//	}
//
// # Live updates and snapshots
//
// An Engine is live: Engine.Apply takes a batched Mutation — Insert, Delete
// and Update ops — and publishes its effect as the engine's next generation,
// maintaining the tuple graph and the keyword index incrementally instead of
// rebuilding them:
//
//	gen, err := engine.Apply(ctx, kws.Mutation{Ops: []kws.Op{
//		kws.Insert("EMPLOYEE", map[string]any{"SSN": "e5", "L_NAME": "Turing", "D_ID": "d1"}),
//		kws.Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"D_ID": "d2"}),
//		kws.Delete("DEPENDENT", map[string]any{"ID": "t2"}),
//	}})
//
// Generations are immutable and published atomically. Apply guarantees to
// concurrent readers: (1) no blocking — Search, Stream and SearchBatch never
// wait for a writer; (2) no torn reads — a call uses the generation current
// at its start for its whole duration, a SearchBatch answers every query of
// the batch from one generation, and a Stream keeps yielding its generation
// even when mutations land mid-stream; (3) atomicity — a batch either
// publishes completely or, on any error (including context cancellation),
// not at all, leaving the engine on its previous generation; and (4)
// rebuild equivalence — after any sequence of mutations, search output is
// byte-identical to a fresh kws.New over the mutated data (the property
// tests in this package enforce this). Engine.Generation reports the current
// generation number. Writers are serialized; readers scale independently.
//
// Once handed to kws.New, a Database freezes: Insert, AddTable and the CSV
// loaders fail with ErrFrozenDatabase instead of mutating data behind the
// engine's back. Route all changes through Engine.Apply.
//
// # Caching and serving
//
// Cache fronts an Engine with a bounded, sharded LRU keyed by the
// normalized query and the generation, so Apply implicitly invalidates
// every cached result by publishing a new generation — no scanning, no
// bookkeeping. Concurrent identical misses collapse into one search
// (singleflight), and a hit is always byte-identical to an uncached search
// of the same generation:
//
//	cache := kws.NewCache(engine, kws.CacheOptions{MaxBytes: 64 << 20})
//	results, info, err := cache.SearchInfo(ctx, q) // info.Hit, info.Generation
//
// cmd/kwsd serves an Engine and its Cache over HTTP — single, batch and
// NDJSON-streamed search, mutations, health and stats — with admission
// control and latency metrics; see docs/http-api.md for the wire format
// and ARCHITECTURE.md for how the layers fit together.
package kws

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/paperdb"
	"repro/internal/relation"
	"repro/internal/workload"
)

// ErrFrozenDatabase is returned by Database mutators (AddTable, Insert,
// LoadCSV, LoadCSVDir) after the database has been handed to kws.New. A
// built engine snapshots the data: writes through the facade would neither
// reach the engine's graph and index (stale reads) nor stay isolated from
// its association analyzer — route every change through Engine.Apply
// instead.
var ErrFrozenDatabase = errors.New("kws: database is frozen by an engine; apply changes through Engine.Apply")

// ColumnSpec declares one column of a table.
type ColumnSpec struct {
	// Name is the column name.
	Name string
	// Type is one of "string", "text", "int", "float", "bool". "text"
	// columns hold free text and are keyword-indexed; "string" columns
	// hold identifier-like values and are indexed as well unless they are
	// key columns.
	Type string
	// Nullable marks the column as optional.
	Nullable bool
}

// ForeignKeySpec declares a referential constraint.
type ForeignKeySpec struct {
	// Name is an optional constraint name; it doubles as the relationship
	// name at the conceptual level.
	Name string
	// Columns are the referencing columns of this table.
	Columns []string
	// RefTable and RefColumns identify the referenced primary key.
	RefTable   string
	RefColumns []string
}

// TableSpec declares a table.
type TableSpec struct {
	Name        string
	Columns     []ColumnSpec
	PrimaryKey  []string
	ForeignKeys []ForeignKeySpec
}

// Database is a self-contained in-memory relational database. Once handed to
// kws.New it freezes: further AddTable, Insert and CSV loads fail with
// ErrFrozenDatabase, and changes flow through Engine.Apply.
type Database struct {
	db     *relation.Database
	frozen atomic.Bool
}

// freeze marks the database as owned by an engine; see ErrFrozenDatabase.
func (d *Database) freeze() { d.frozen.Store(true) }

// unfreeze releases a freeze taken by a New that subsequently failed (WAL
// replay is the only fallible step after freezing), preserving the invariant
// that a failed New never leaves a frozen database.
func (d *Database) unfreeze() { d.frozen.Store(false) }

// Frozen reports whether the database has been handed to kws.New and is now
// read-only through this facade.
func (d *Database) Frozen() bool { return d.frozen.Load() }

// NewDatabase creates an empty database with the given name.
func NewDatabase(name string) *Database {
	return &Database{db: relation.NewDatabase(name)}
}

// AddTable adds a table according to the specification.
func (d *Database) AddTable(spec TableSpec) error {
	if d.Frozen() {
		return ErrFrozenDatabase
	}
	cols := make([]relation.Column, 0, len(spec.Columns))
	for _, c := range spec.Columns {
		t, err := parseColumnType(c.Type)
		if err != nil {
			return fmt.Errorf("kws: table %s column %s: %w", spec.Name, c.Name, err)
		}
		cols = append(cols, relation.Column{Name: c.Name, Type: t, Nullable: c.Nullable})
	}
	fks := make([]relation.ForeignKey, 0, len(spec.ForeignKeys))
	for _, fk := range spec.ForeignKeys {
		fks = append(fks, relation.ForeignKey{
			Name:        fk.Name,
			Columns:     append([]string(nil), fk.Columns...),
			RefRelation: fk.RefTable,
			RefColumns:  append([]string(nil), fk.RefColumns...),
		})
	}
	schema, err := relation.NewSchema(spec.Name, cols, spec.PrimaryKey, fks...)
	if err != nil {
		return err
	}
	_, err = d.db.CreateTable(schema)
	return err
}

// Insert adds a row to a table. Values may be string, int, int64, float64 or
// bool; missing columns become NULL. After the database has been given to
// kws.New, Insert fails with ErrFrozenDatabase — historically it silently
// mutated the relational data behind the frozen engine's back, which the
// engine's index and graph never saw (a stale read) while its analyzer did.
func (d *Database) Insert(table string, row map[string]any) error {
	if d.Frozen() {
		return ErrFrozenDatabase
	}
	t, ok := d.db.Table(table)
	if !ok {
		return fmt.Errorf("kws: unknown table %s", table)
	}
	values, err := coerceRow(t, row)
	if err != nil {
		return fmt.Errorf("kws: %w", err)
	}
	_, err = t.Insert(values)
	return err
}

// Validate checks the catalog (foreign keys reference existing primary keys)
// and the data (no dangling references).
func (d *Database) Validate() error {
	if err := d.db.Validate(); err != nil {
		return err
	}
	if errs := d.db.CheckIntegrity(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// Tables returns the table names in creation order.
func (d *Database) Tables() []string { return d.db.TableNames() }

// TupleCount returns the total number of rows.
func (d *Database) TupleCount() int { return d.db.TupleCount() }

// Dump writes every table as aligned text to w.
func (d *Database) Dump(w io.Writer) error { return relation.DumpDatabase(w, d.db) }

// internalDB exposes the underlying engine database to the facade.
func (d *Database) internalDB() *relation.Database { return d.db }

// PaperExample returns the running example of the paper: the company
// database of Figure 2 (departments, projects, employees, assignments and
// dependents).
func PaperExample() *Database {
	return &Database{db: paperdb.MustLoad()}
}

// SyntheticCompany generates a synthetic company database following the
// paper's schema, sized by the scale factor and seeded for reproducibility.
func SyntheticCompany(scale int, seed int64) *Database {
	return &Database{db: workload.MustGenerate(workload.ScaledConfig(scale, seed))}
}

// SyntheticLogs generates a synthetic log-search database (services, hosts,
// timestamped log events with high-cardinality trace tokens, incidents
// attached through an N:M junction), sized by the scale factor and seeded
// for reproducibility.
func SyntheticLogs(scale int, seed int64) *Database {
	return &Database{db: workload.MustGenerateLogs(workload.ScaledLogsConfig(scale, seed))}
}

// SyntheticDocs generates a synthetic document-search database (collections
// of documents whose nested JSON fields are flattened into dotted-path rows,
// tagged through an N:M junction), sized by the scale factor and seeded for
// reproducibility.
func SyntheticDocs(scale int, seed int64) *Database {
	return &Database{db: workload.MustGenerateDocs(workload.ScaledDocsConfig(scale, seed))}
}

func parseColumnType(s string) (relation.Type, error) {
	switch s {
	case "string", "varchar", "":
		return relation.TypeString, nil
	case "text":
		return relation.TypeText, nil
	case "int", "integer":
		return relation.TypeInt, nil
	case "float", "double":
		return relation.TypeFloat, nil
	case "bool", "boolean":
		return relation.TypeBool, nil
	default:
		return relation.TypeNull, fmt.Errorf("unknown column type %q", s)
	}
}

func toValue(v any, t relation.Type) (relation.Value, error) {
	if v == nil {
		return relation.Null(), nil
	}
	switch x := v.(type) {
	case string:
		if t == relation.TypeText {
			return relation.Text(x), nil
		}
		return relation.String(x), nil
	case int:
		return relation.Int(int64(x)), nil
	case int64:
		return relation.Int(x), nil
	case float64:
		if t == relation.TypeInt {
			if x == float64(int64(x)) {
				return relation.Int(int64(x)), nil
			}
			return relation.Null(), fmt.Errorf("value %v is not an integer", x)
		}
		return relation.Float(x), nil
	case bool:
		return relation.Bool(x), nil
	default:
		return relation.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}
