package kws

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

// TestToResultMergesCollidingLabelsDeterministically guards the fix for a
// nondeterminism bug kws-lint's rangedeterminism pass surfaced: toResult
// filled the label-keyed MatchedKeywords map while ranging over the
// ID-keyed Matches map, so when a caller-supplied Labeler rendered two
// distinct tuple IDs to the same label, which keyword list survived
// depended on random map iteration order. Colliding labels must instead
// merge, in sorted-ID order, on every run.
func TestToResultMergesCollidingLabelsDeterministically(t *testing.T) {
	ids := []relation.TupleID{
		{Relation: "e", Key: "1"},
		{Relation: "e", Key: "2"},
		{Relation: "p", Key: "1"},
	}
	a := Answer{
		Connection: core.Connection{Tuples: ids[:1]},
		Analysis:   core.Analysis{Connection: core.Connection{Tuples: ids[:1]}},
		Matches: map[relation.TupleID][]string{
			ids[0]: {"Smith"},
			ids[1]: {"Turing"},
			ids[2]: {"XML"},
		},
	}
	collide := func(relation.TupleID) string { return "X" }
	// e[1] < e[2] < p[1], so the merged list is fixed regardless of map
	// iteration order.
	want := map[string][]string{"X": {"Smith", "Turing", "XML"}}
	for i := 0; i < 100; i++ {
		got := toResult(a, 0, 0, collide).MatchedKeywords
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: MatchedKeywords = %v, want %v", i, got, want)
		}
	}
}

// TestToResultCopiesMatchedKeywords checks the rendered result does not
// alias the answer's keyword slices: mutating the result must not reach
// back into the engine's answer.
func TestToResultCopiesMatchedKeywords(t *testing.T) {
	id := relation.TupleID{Relation: "e", Key: "1"}
	kws := []string{"Smith", "XML"}
	a := Answer{
		Connection: core.Connection{Tuples: []relation.TupleID{id}},
		Analysis:   core.Analysis{Connection: core.Connection{Tuples: []relation.TupleID{id}}},
		Matches:    map[relation.TupleID][]string{id: kws},
	}
	res := toResult(a, 0, 0, func(relation.TupleID) string { return "X" })
	res.MatchedKeywords["X"][0] = "clobbered"
	if kws[0] != "Smith" {
		t.Fatalf("result aliases the answer's keyword slice: %v", kws)
	}
}
