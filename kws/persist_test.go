package kws

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/paperdb"
	"repro/internal/relation"
	"repro/internal/store"
)

// The durability property mirrors the rebuild-equivalence one: after a
// restart, an engine recovered from its store must land on a contiguous
// prefix of the submitted generations covering every acknowledged one, with
// relational state, graph, index and full search output byte-identical to a
// fresh build over that prefix.

// batchMaker generates random mutation batches against an evolving working
// mirror (which assumes every submitted batch applies) and remembers them,
// so any prefix of the submission history can be rebuilt from scratch.
type batchMaker struct {
	rng     *rand.Rand
	mirror  *relation.Database
	counter int
	batches []Mutation
}

func newBatchMaker(seed int64) *batchMaker {
	return &batchMaker{rng: rand.New(rand.NewSource(seed)), mirror: paperdb.MustLoad()}
}

// next returns a non-empty batch valid against the submission history so far.
func (bm *batchMaker) next(t *testing.T) Mutation {
	t.Helper()
	for {
		n := 1 + bm.rng.Intn(3)
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			op, ok := randomOp(t, bm.rng, bm.mirror, &bm.counter)
			if !ok {
				continue
			}
			replayOp(t, bm.mirror, op)
			ops = append(ops, op)
		}
		if len(ops) > 0 {
			bm.batches = append(bm.batches, Mutation{Ops: ops})
			return Mutation{Ops: ops}
		}
	}
}

// rebuilt replays the first gen submitted batches onto a fresh paper
// database — the ground truth for what generation gen must contain.
func (bm *batchMaker) rebuilt(t *testing.T, gen uint64) *relation.Database {
	t.Helper()
	db := paperdb.MustLoad()
	for _, m := range bm.batches[:gen] {
		for _, op := range m.Ops {
			replayOp(t, db, op)
		}
	}
	return db
}

func openStore(t *testing.T, dir string) *store.FileStore {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEngineRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(7)
	for b := 0; b < 6; b++ {
		if _, err := live.Apply(ctx, bm.next(t)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// The durable engine keeps the equivalence property after every
		// batch, not just at the end of the run.
		requireEngineEquivalent(t, b, live, bm.rebuilt(t, live.Generation()))
	}
	acked := live.Generation()
	st.Close()

	// Restart: a fresh store handle over the same directory, a fresh seed
	// database (which recovery must ignore in favor of the log).
	st2 := openStore(t, dir)
	recovered, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st2))
	if err != nil {
		t.Fatalf("recovering New: %v", err)
	}
	if recovered.Generation() != acked {
		t.Fatalf("recovered generation %d, want %d", recovered.Generation(), acked)
	}
	ps, ok := recovered.PersistStats()
	if !ok || ps.ReplayedRecords != int64(acked) {
		t.Fatalf("PersistStats = %+v, %v; want %d replayed records", ps, ok, acked)
	}
	requireEngineEquivalent(t, int(acked), recovered, bm.rebuilt(t, acked))

	// The recovered engine is fully live: further mutations append to the
	// same log and keep the equivalence property.
	if _, err := recovered.Apply(ctx, bm.next(t)); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	requireEngineEquivalent(t, int(acked)+1, recovered, bm.rebuilt(t, acked+1))
}

func TestEngineRecoverFromSnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st), WithSnapshotEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(11)
	for b := 0; b < 5; b++ {
		if _, err := live.Apply(ctx, bm.next(t)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// Automatic snapshots at even generations must not disturb the
		// live state: the equivalence property holds after every batch.
		requireEngineEquivalent(t, b, live, bm.rebuilt(t, live.Generation()))
	}
	st.Close()

	// Generations 1..5 with a snapshot every 2: recovery loads the snapshot
	// of generation 4 and replays only record 5.
	st2 := openStore(t, dir)
	recovered, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st2))
	if err != nil {
		t.Fatalf("recovering New: %v", err)
	}
	if recovered.Generation() != 5 {
		t.Fatalf("recovered generation %d, want 5", recovered.Generation())
	}
	ps, _ := recovered.PersistStats()
	if ps.SnapshotGeneration != 4 || ps.ReplayedRecords != 1 {
		t.Fatalf("PersistStats = %+v, want snapshot gen 4 and 1 replayed record", ps)
	}
	requireEngineEquivalent(t, 5, recovered, bm.rebuilt(t, 5))
}

// TestEngineFaultMatrix crashes the store at every Apply step boundary and
// asserts restart recovery lands on a contiguous prefix of the submitted
// generations that covers every acknowledged one — including the
// post-append crash, where recovery legally lands one generation AHEAD of
// the last acknowledgment (the record was durable, the ack was lost).
func TestEngineFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		point store.CrashPoint
		torn  int
		// wantGen is the generation recovery must land on after 2 acked
		// batches and one faulted third.
		wantGen uint64
	}{
		{"pre-append", store.CrashPreAppend, 0, 2},
		{"torn-append-empty", store.CrashTornAppend, 0, 2},
		{"torn-append-header", store.CrashTornAppend, 5, 2},
		{"torn-append-payload", store.CrashTornAppend, 12, 2},
		{"post-append", store.CrashPostAppend, 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := openStore(t, dir)
			faulty := store.NewFaultStore(fs)
			live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(faulty), WithSnapshotEvery(-1))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			bm := newBatchMaker(23)
			for b := 0; b < 2; b++ {
				if _, err := live.Apply(ctx, bm.next(t)); err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
			}
			faulty.Point, faulty.TornBytes = tc.point, tc.torn
			if _, err := live.Apply(ctx, bm.next(t)); !errors.Is(err, ErrPersistence) {
				t.Fatalf("faulted Apply = %v, want ErrPersistence", err)
			}
			// The failed Apply published nothing, durable or not.
			if live.Generation() != 2 {
				t.Fatalf("generation after faulted Apply = %d, want 2", live.Generation())
			}
			fs.Close()

			st2 := openStore(t, dir)
			recovered, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st2))
			if err != nil {
				t.Fatalf("recovering New: %v", err)
			}
			if recovered.Generation() != tc.wantGen {
				t.Fatalf("recovered generation %d, want %d", recovered.Generation(), tc.wantGen)
			}
			requireEngineEquivalent(t, int(tc.wantGen), recovered, bm.rebuilt(t, tc.wantGen))
		})
	}
}

func TestApplyPersistenceErrorKeepsGeneration(t *testing.T) {
	fs := openStore(t, t.TempDir())
	faulty := store.NewFaultStore(fs)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(faulty), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(31)
	batch := bm.next(t)

	faulty.Point = store.CrashPreAppend
	if _, err := live.Apply(ctx, batch); !errors.Is(err, ErrPersistence) {
		t.Fatalf("Apply = %v, want ErrPersistence", err)
	}
	if live.Generation() != 0 {
		t.Fatalf("generation = %d after failed Apply, want 0", live.Generation())
	}
	// The engine keeps serving, and the identical retry succeeds once the
	// store recovers — same batch, same resulting generation.
	faulty.Point = store.CrashNone
	gen, err := live.Apply(ctx, batch)
	if err != nil || gen != 1 {
		t.Fatalf("retried Apply = %d, %v; want generation 1", gen, err)
	}
	requireEngineEquivalent(t, 1, live, bm.rebuilt(t, 1))
}

func TestApplySnapshotErrorDoesNotFailApply(t *testing.T) {
	fs := openStore(t, t.TempDir())
	faulty := store.NewFaultStore(fs)
	// Cadence 1: every Apply tries to snapshot; the injected mid-snapshot
	// crash must be absorbed.
	live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(faulty), WithSnapshotEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	bm := newBatchMaker(41)
	faulty.Point = store.CrashMidSnapshot
	gen, err := live.Apply(context.Background(), bm.next(t))
	if err != nil || gen != 1 {
		t.Fatalf("Apply = %d, %v; want generation 1 despite snapshot fault", gen, err)
	}
	ps, _ := live.PersistStats()
	if ps.SnapshotErrors != 1 || ps.SnapshotGeneration != 0 {
		t.Fatalf("PersistStats = %+v, want 1 snapshot error and no snapshot", ps)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	live, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bm := newBatchMaker(53)
	for b := 0; b < 3; b++ {
		if _, err := live.Apply(ctx, bm.next(t)); err != nil {
			t.Fatal(err)
		}
		requireEngineEquivalent(t, b, live, bm.rebuilt(t, live.Generation()))
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ps, _ := live.PersistStats()
	if ps.WALRecords != 0 || ps.SnapshotGeneration != 3 {
		t.Fatalf("after Checkpoint: %+v, want empty WAL and snapshot gen 3", ps)
	}
	st.Close()

	st2 := openStore(t, dir)
	recovered, err := New(&Database{db: paperdb.MustLoad()}, WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Generation() != 3 {
		t.Fatalf("recovered generation %d, want 3", recovered.Generation())
	}
	if ps, _ := recovered.PersistStats(); ps.ReplayedRecords != 0 {
		t.Fatalf("recovery from checkpoint replayed %d records, want 0", ps.ReplayedRecords)
	}
	requireEngineEquivalent(t, 3, recovered, bm.rebuilt(t, 3))
}

func TestEngineWithoutStore(t *testing.T) {
	live, err := New(&Database{db: paperdb.MustLoad()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := live.PersistStats(); ok {
		t.Fatal("PersistStats reported a store on a memory-only engine")
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on memory-only engine: %v", err)
	}
}

// TestRecoverFailureUnfreezesDatabase pins the New invariant: when recovery
// fails (here: a log whose generations cannot apply to the seed), the
// caller's database is left unfrozen.
func TestRecoverFailureUnfreezesDatabase(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	// Log a mutation referencing a table the seed database lacks.
	if err := st.Append(1, store.Mutation{Ops: []store.Op{{Kind: 1, Table: "NO_SUCH_TABLE", Row: map[string]any{"ID": "x"}}}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	db := &Database{db: paperdb.MustLoad()}
	if _, err := New(db, WithStore(st2)); !errors.Is(err, ErrPersistence) {
		t.Fatalf("New = %v, want ErrPersistence", err)
	}
	if db.Frozen() {
		t.Fatal("failed New left the database frozen")
	}
}
