package kws

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

func paperEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(PaperExample(), WithLabeler(PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func renders(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.ConnectionWithCardinalities
	}
	return out
}

func searchRenders(t *testing.T, e *Engine, keywords ...string) []string {
	t.Helper()
	res, err := e.Search(context.Background(), Query{Keywords: keywords})
	if err != nil {
		t.Fatal(err)
	}
	return renders(res)
}

func TestApplyInsertIsSearchable(t *testing.T) {
	e := paperEngine(t)
	if got := e.Generation(); got != 0 {
		t.Fatalf("fresh engine generation = %d, want 0", got)
	}
	before := searchRenders(t, e, "Smith", "XML")

	gen, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e5", "L_NAME": "Turing", "S_NAME": "Alan", "D_ID": "d1"}),
		Insert("WORKS_ON", map[string]any{"ESSN": "e5", "P_ID": "p1", "HOURS": 12}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || e.Generation() != 1 {
		t.Fatalf("generation after Apply = %d (engine %d), want 1", gen, e.Generation())
	}
	// The new employee is reachable through the index and the graph.
	if got := e.Match("Turing"); len(got) != 1 || got[0] != "e5" {
		t.Fatalf("Match(Turing) = %v", got)
	}
	after := searchRenders(t, e, "Turing", "XML")
	if len(after) == 0 {
		t.Fatal("inserted employee unreachable: no Turing-XML connections")
	}
	for _, r := range after {
		if !strings.Contains(r, "Turing") {
			t.Fatalf("connection misses the inserted tuple: %q", r)
		}
	}
	// Old answers are unaffected by an insert elsewhere in the graph except
	// for content-score shifts; the connection set stays a superset.
	if got := searchRenders(t, e, "Smith", "XML"); len(got) < len(before) {
		t.Fatalf("Smith-XML answers shrank after insert: %d -> %d", len(before), len(got))
	}
}

func TestApplyDeleteRemovesAnswers(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Delete("WORKS_ON", map[string]any{"ESSN": "e1", "P_ID": "p1"}),
	}}); err != nil {
		t.Fatal(err)
	}
	for _, r := range searchRenders(t, e, "Smith", "XML") {
		if strings.Contains(r, "w_f1") {
			t.Fatalf("answer still crosses the deleted junction tuple: %q", r)
		}
	}
	// Deleting a referenced tuple is allowed; the references dangle.
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Delete("EMPLOYEE", map[string]any{"SSN": "e1"}),
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Match("John"); len(got) != 1 || got[0] != "e4" {
		t.Fatalf("Match(John) after delete = %v, want [e4]", got)
	}
}

func TestApplyUpdateRewritesPostingsAndEdges(t *testing.T) {
	e := paperEngine(t)
	// Move e2 (Smith) from d2 to d3 and rename her.
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Update("EMPLOYEE", map[string]any{"SSN": "e2"}, map[string]any{"L_NAME": "Lovelace", "D_ID": "d3"}),
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Match("Lovelace"); len(got) != 1 || got[0] != "e2" {
		t.Fatalf("Match(Lovelace) = %v", got)
	}
	for _, id := range e.Match("Smith") {
		if id == "e2" {
			t.Fatal("stale Smith posting for the updated tuple")
		}
	}
	// The old schema-level connection d2 - e2 is gone; e2 now hangs off d3.
	for _, r := range searchRenders(t, e, "Lovelace", "retrieval") {
		if strings.Contains(r, "d2") && strings.Contains(r, "e2") &&
			!strings.Contains(r, "w_f2") {
			t.Fatalf("update left a direct edge to the old department: %q", r)
		}
	}
}

func TestApplyUpdateOfPrimaryKeyMovesIdentity(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Update("DEPENDENT", map[string]any{"ID": "t1"}, map[string]any{"ID": "t9"}),
	}}); err != nil {
		t.Fatal(err)
	}
	got := e.Match("Alice")
	if len(got) != 1 || got[0] != "t9" {
		t.Fatalf("Match(Alice) after key update = %v, want [t9]", got)
	}
}

func TestApplyBatchIsAtomic(t *testing.T) {
	e := paperEngine(t)
	before := searchRenders(t, e, "Smith", "XML")
	gen := e.Generation()
	// Op 2 fails (duplicate primary key): nothing of the batch may land.
	_, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e6", "L_NAME": "Hopper", "S_NAME": "Grace", "D_ID": "d1"}),
		Insert("EMPLOYEE", map[string]any{"SSN": "e1", "L_NAME": "Dup", "S_NAME": "Dup", "D_ID": "d1"}),
	}})
	if err == nil {
		t.Fatal("duplicate insert did not fail the batch")
	}
	if e.Generation() != gen {
		t.Fatalf("failed Apply advanced the generation to %d", e.Generation())
	}
	if got := e.Match("Hopper"); len(got) != 0 {
		t.Fatalf("half-applied batch leaked tuple: %v", got)
	}
	if got := searchRenders(t, e, "Smith", "XML"); !reflect.DeepEqual(got, before) {
		t.Fatal("failed Apply changed search output")
	}
}

func TestApplyInsertThenDeleteCancelsOut(t *testing.T) {
	e := paperEngine(t)
	before := searchRenders(t, e, "Smith", "XML")
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e7", "L_NAME": "Ephemeral", "S_NAME": "Eve", "D_ID": "d1"}),
		Delete("EMPLOYEE", map[string]any{"SSN": "e7"}),
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Match("Ephemeral"); len(got) != 0 {
		t.Fatalf("cancelled-out tuple is searchable: %v", got)
	}
	if got := searchRenders(t, e, "Smith", "XML"); !reflect.DeepEqual(got, before) {
		t.Fatal("insert+delete batch changed search output")
	}
	if e.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", e.Generation())
	}
}

func TestApplyDeleteThenReinsertSameKey(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Delete("EMPLOYEE", map[string]any{"SSN": "e1"}),
		Insert("EMPLOYEE", map[string]any{"SSN": "e1", "L_NAME": "Reborn", "S_NAME": "Ree", "D_ID": "d1"}),
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Match("Reborn"); len(got) != 1 || got[0] != "e1" {
		t.Fatalf("Match(Reborn) = %v", got)
	}
	// The junction tuple w_f1 referencing e1 re-resolved to the new tuple.
	found := false
	for _, r := range searchRenders(t, e, "Reborn", "XML") {
		if strings.Contains(r, "w_f1") {
			found = true
		}
	}
	if !found {
		t.Fatal("re-inserted key did not re-resolve the junction reference")
	}
}

func TestApplyErrors(t *testing.T) {
	e := paperEngine(t)
	ctx := context.Background()
	cases := []struct {
		name string
		op   Op
	}{
		{"unknown table", Insert("NOPE", map[string]any{"X": 1})},
		{"unknown column", Insert("EMPLOYEE", map[string]any{"NOPE": 1})},
		{"missing tuple", Delete("EMPLOYEE", map[string]any{"SSN": "e99"})},
		{"missing key column", Delete("WORKS_ON", map[string]any{"ESSN": "e1"})},
		{"extra key column", Delete("EMPLOYEE", map[string]any{"SSN": "e1", "L_NAME": "Smith"})},
		{"update missing tuple", Update("EMPLOYEE", map[string]any{"SSN": "e99"}, map[string]any{"L_NAME": "X"})},
		{"null into primary key", Update("EMPLOYEE", map[string]any{"SSN": "e1"}, map[string]any{"SSN": nil})},
		{"unknown kind", Op{Kind: OpKind(9), Table: "EMPLOYEE"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen := e.Generation()
			if _, err := e.Apply(ctx, Mutation{Ops: []Op{tc.op}}); err == nil {
				t.Fatalf("%s: Apply succeeded", tc.name)
			}
			if e.Generation() != gen {
				t.Fatalf("%s: failed Apply advanced the generation", tc.name)
			}
		})
	}
}

func TestApplyEmptyMutationIsNoOp(t *testing.T) {
	e := paperEngine(t)
	gen, err := e.Apply(context.Background(), Mutation{})
	if err != nil || gen != 0 {
		t.Fatalf("empty Apply = (%d, %v), want (0, nil)", gen, err)
	}
	if e.Generation() != 0 {
		t.Fatal("empty Apply published a generation")
	}
}

func TestApplyCancelledContextLeavesSnapshotUntouched(t *testing.T) {
	e := paperEngine(t)
	before := searchRenders(t, e, "Smith", "XML")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Apply(ctx, Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e8", "L_NAME": "Ghost", "S_NAME": "Gil", "D_ID": "d1"}),
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Apply with cancelled ctx = %v, want context.Canceled", err)
	}
	if e.Generation() != 0 {
		t.Fatalf("cancelled Apply advanced the generation to %d", e.Generation())
	}
	if got := searchRenders(t, e, "Smith", "XML"); !reflect.DeepEqual(got, before) {
		t.Fatal("cancelled Apply changed search output")
	}
	if got := e.Match("Ghost"); len(got) != 0 {
		t.Fatalf("cancelled Apply leaked tuple: %v", got)
	}
}

func TestStreamKeepsItsGenerationAcrossApply(t *testing.T) {
	e := paperEngine(t)
	want := searchRendersStream(t, e, "Smith", "XML")

	// Re-run the stream, mutating the engine after the first result: the
	// in-flight stream must keep reading generation 0.
	var got []string
	mutated := false
	err := e.Stream(context.Background(), Query{Keywords: []string{"Smith", "XML"}}, func(r Result) bool {
		got = append(got, r.ConnectionWithCardinalities)
		if !mutated {
			mutated = true
			if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
				Delete("WORKS_ON", map[string]any{"ESSN": "e1", "P_ID": "p1"}),
				Delete("EMPLOYEE", map[string]any{"SSN": "e1"}),
			}}); err != nil {
				t.Errorf("Apply mid-stream: %v", err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-stream Apply tore the snapshot:\ngot:  %v\nwant: %v", got, want)
	}
	// A stream started after the Apply sees the new generation.
	after := searchRendersStream(t, e, "Smith", "XML")
	if reflect.DeepEqual(after, want) {
		t.Fatal("post-Apply stream still shows generation 0 output")
	}
}

func searchRendersStream(t *testing.T, e *Engine, keywords ...string) []string {
	t.Helper()
	var out []string
	if err := e.Stream(context.Background(), Query{Keywords: keywords}, func(r Result) bool {
		out = append(out, r.ConnectionWithCardinalities)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFrozenDatabaseRejectsDirectWrites(t *testing.T) {
	db := PaperExample()
	if db.Frozen() {
		t.Fatal("database frozen before any engine was built")
	}
	// Regression: Insert after New used to mutate the relational data behind
	// the frozen engine's back — the analyzer saw the new tuple while the
	// index and graph did not (a stale read). It must now fail loudly.
	e, err := New(db, WithLabeler(PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Frozen() {
		t.Fatal("New did not freeze the database")
	}
	before := searchRenders(t, e, "Smith", "XML")
	err = db.Insert("EMPLOYEE", map[string]any{"SSN": "e9", "L_NAME": "Sneaky", "S_NAME": "Sam", "D_ID": "d1"})
	if !errors.Is(err, ErrFrozenDatabase) {
		t.Fatalf("Insert after New = %v, want ErrFrozenDatabase", err)
	}
	if err := db.AddTable(TableSpec{Name: "X", Columns: []ColumnSpec{{Name: "ID"}}, PrimaryKey: []string{"ID"}}); !errors.Is(err, ErrFrozenDatabase) {
		t.Fatalf("AddTable after New = %v, want ErrFrozenDatabase", err)
	}
	if _, err := db.LoadCSV("EMPLOYEE", strings.NewReader("SSN\nx1\n")); !errors.Is(err, ErrFrozenDatabase) {
		t.Fatalf("LoadCSV after New = %v, want ErrFrozenDatabase", err)
	}
	// Nothing reached the engine or the data.
	if got := e.Match("Sneaky"); len(got) != 0 {
		t.Fatalf("rejected insert is searchable: %v", got)
	}
	if got := searchRenders(t, e, "Smith", "XML"); !reflect.DeepEqual(got, before) {
		t.Fatal("rejected writes changed search output")
	}
	if db.TupleCount() != 16 {
		t.Fatalf("TupleCount = %d, want the paper's 16", db.TupleCount())
	}
	// A failed New must not freeze: validation errors come first.
	db2 := PaperExample()
	if _, err := New(db2, WithDefaults(Config{Engine: "nope"})); err == nil {
		t.Fatal("New with unknown engine succeeded")
	}
	if db2.Frozen() {
		t.Fatal("failed New froze the database")
	}
	if err := db2.Insert("EMPLOYEE", map[string]any{"SSN": "e9", "L_NAME": "Ok", "S_NAME": "Ola", "D_ID": "d1"}); err != nil {
		t.Fatalf("insert into never-engined database failed: %v", err)
	}
}

func TestApplyRefreshesAnalyzerBinding(t *testing.T) {
	e := paperEngine(t)
	// Hub statistics count referencing tuples at the instance level; after
	// adding a second dependent relationship the analyzer of the new
	// generation must see the new database, not the old one.
	if _, err := e.Apply(context.Background(), Mutation{Ops: []Op{
		Insert("DEPENDENT", map[string]any{"ID": "t3", "ESSN": "e3", "DEPENDENT_NAME": "Ada"}),
	}}); err != nil {
		t.Fatal(err)
	}
	snap := e.current()
	if snap.comp.Analyzer.Database() != snap.comp.DB {
		t.Fatal("analyzer of the new generation is bound to a stale database")
	}
	if snap.comp.Graph.Database() != snap.comp.DB {
		t.Fatal("graph of the new generation is bound to a stale database")
	}
	if got := e.Match("Ada"); len(got) != 1 {
		t.Fatalf("Match(Ada) = %v", got)
	}
}

func TestLegacyEngineServesLiveGenerations(t *testing.T) {
	le, err := Open(PaperExample(), Config{Labeler: PaperLabeler()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := le.Apply(context.Background(), Mutation{Ops: []Op{
		Insert("EMPLOYEE", map[string]any{"SSN": "e5", "L_NAME": "Turing", "S_NAME": "Alan", "D_ID": "d1"}),
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := le.Search("Turing")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("legacy Search does not see the applied mutation")
	}
}

// BenchmarkApply compares incremental maintenance of one single-tuple
// mutation against the full rebuild it replaces, on the scale-4 workload.
// The acceptance bar of the live-engine change is incremental >= 5x faster.
func BenchmarkApply(b *testing.B) {
	names := [2]string{"Flipper", "Flopper"}
	b.Run("incremental", func(b *testing.B) {
		db := SyntheticCompany(4, 42)
		e, err := New(db)
		if err != nil {
			b.Fatal(err)
		}
		emp := firstEmployeeKey(b, e.current().comp.DB)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := e.Apply(ctx, Mutation{Ops: []Op{
				Update("EMPLOYEE", map[string]any{"SSN": emp}, map[string]any{"L_NAME": names[i%2]}),
			}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		inner := SyntheticCompany(4, 42).internalDB()
		emp := firstEmployeeKey(b, inner)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-live workflow: mutate the relational data, then build
			// a whole new engine from scratch.
			tab, _ := inner.Table("EMPLOYEE")
			old, ok := tab.Delete(emp)
			if !ok {
				b.Fatal("employee vanished")
			}
			values := make(map[string]relation.Value)
			for _, col := range tab.Schema().Columns {
				values[col.Name] = old.Value(col.Name)
			}
			values["L_NAME"] = relation.String(names[i%2])
			if _, err := tab.Insert(values); err != nil {
				b.Fatal(err)
			}
			if _, err := New(&Database{db: inner}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func firstEmployeeKey(tb testing.TB, db *relation.Database) string {
	tb.Helper()
	tab, ok := db.Table("EMPLOYEE")
	if !ok || tab.Len() == 0 {
		tb.Fatal("no employees in workload")
	}
	return tab.Tuples()[0].ID().Key
}
