package kws

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/index"
	"repro/internal/paperdb"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/search/banks"
	"repro/internal/search/mtjnt"
	"repro/internal/search/paths"
)

// Ranking strategy names accepted by Config.Ranking.
const (
	// RankRDBLength ranks by the number of joins in the relational
	// database (the conventional length-based ranking).
	RankRDBLength = "rdb-length"
	// RankERLength ranks by conceptual length: middle relations
	// implementing N:M relationships do not count.
	RankERLength = "er-length"
	// RankCloseFirst ranks close associations first, then corroborated
	// loose ones, then the rest, breaking ties by conceptual length.
	RankCloseFirst = "close-first"
	// RankLoosenessPenalty ranks by conceptual length plus a penalty per
	// transitive N:M sub-path.
	RankLoosenessPenalty = "looseness-penalty"
	// RankHubPenalty additionally charges for the tuples associated by
	// every general-entity hub at the instance level.
	RankHubPenalty = "hub-penalty"
	// RankCombined mixes conceptual length with the TF-IDF content score.
	RankCombined = "combined"
)

// Search engine names accepted by Config.Engine.
const (
	// EnginePaths enumerates every connection between keyword tuples up to
	// the join budget (the paper's proposal).
	EnginePaths = "paths"
	// EngineMTJNT returns only minimal total joining networks of tuples
	// (the DISCOVER baseline).
	EngineMTJNT = "mtjnt"
	// EngineBANKS runs backward expanding search (the BANKS baseline);
	// only its path-shaped answers are returned.
	EngineBANKS = "banks"
)

// Config tunes an Engine.
type Config struct {
	// Engine selects the search strategy; it defaults to EnginePaths.
	Engine string
	// Ranking selects the ranking strategy; it defaults to RankCloseFirst.
	Ranking string
	// MaxJoins is the connection budget in joins; it defaults to 5.
	MaxJoins int
	// TopK caps the number of results (0 = all).
	TopK int
	// DisableInstanceChecks skips the instance-level corroboration
	// analysis, which is the most expensive part of result annotation.
	DisableInstanceChecks bool
	// LoosenessLambda is the penalty per transitive N:M sub-path used by
	// RankLoosenessPenalty; it defaults to 1.
	LoosenessLambda float64
}

// Result is one ranked answer.
type Result struct {
	// Rank is the 1-based position under the configured ranking.
	Rank int
	// Score is the ranking cost (lower is better).
	Score float64
	// Connection renders the tuple path, e.g. "d1(XML) - e1(Smith)".
	Connection string
	// ConnectionWithCardinalities renders the path with per-join
	// cardinalities, e.g. "p1(XML) 1:N w_f1 N:1 e1(Smith)".
	ConnectionWithCardinalities string
	// Tuples are the identifiers of the visited tuples in order.
	Tuples []string
	// MatchedKeywords maps each matching tuple identifier to the keywords
	// it matches.
	MatchedKeywords map[string][]string
	// RDBLength and ERLength are the connection lengths at the two levels.
	RDBLength int
	ERLength  int
	// Class is the association classification ("immediate", "functional",
	// "transitive-N:M", "mixed").
	Class string
	// Close reports a guaranteed close association at the schema level.
	Close bool
	// CorroboratedAtInstance reports closeness at the instance level.
	CorroboratedAtInstance bool
	// TransitiveNM counts transitive N:M sub-paths (looseness degree).
	TransitiveNM int
	// ContentScore is the TF-IDF score of the matched attributes.
	ContentScore float64
}

// Engine answers keyword queries over one database.
type Engine struct {
	cfg      Config
	db       *relation.Database
	graph    *datagraph.Graph
	idx      *index.Index
	analyzer *core.Analyzer
	paths    *paths.Engine
	mtjnt    *mtjnt.Engine
	banks    *banks.Engine
	scorer   ranking.Scorer
	labeler  func(relation.TupleID) string
}

// Open prepares an engine for the database: it derives the conceptual
// schema, builds the tuple graph and the keyword index, and validates the
// configuration.
func Open(db *Database, cfg Config) (*Engine, error) {
	if db == nil {
		return nil, fmt.Errorf("kws: nil database")
	}
	if cfg.Engine == "" {
		cfg.Engine = EnginePaths
	}
	if cfg.Ranking == "" {
		cfg.Ranking = RankCloseFirst
	}
	if cfg.MaxJoins <= 0 {
		cfg.MaxJoins = 5
	}
	inner := db.internalDB()
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	analyzer, err := core.Derive(inner)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		db:       inner,
		graph:    datagraph.Build(inner),
		idx:      index.Build(inner),
		analyzer: analyzer,
		labeler:  defaultLabeler(inner),
	}
	e.scorer, err = scorerFor(cfg)
	if err != nil {
		return nil, err
	}
	pathOpts := paths.Options{
		MaxEdges:              cfg.MaxJoins,
		RequireAllKeywords:    true,
		InstanceCorroboration: !cfg.DisableInstanceChecks,
	}
	if e.paths, err = paths.NewWithComponents(inner, e.graph, e.idx, analyzer, pathOpts); err != nil {
		return nil, err
	}
	if e.mtjnt, err = mtjnt.NewWithComponents(inner, e.graph, e.idx, mtjnt.Options{MaxEdges: cfg.MaxJoins}); err != nil {
		return nil, err
	}
	if e.banks, err = banks.NewWithComponents(inner, e.graph, e.idx, banks.Options{MaxDepth: cfg.MaxJoins, MaxResults: 100}); err != nil {
		return nil, err
	}
	switch cfg.Engine {
	case EnginePaths, EngineMTJNT, EngineBANKS:
	default:
		return nil, fmt.Errorf("kws: unknown engine %q", cfg.Engine)
	}
	return e, nil
}

func scorerFor(cfg Config) (ranking.Scorer, error) {
	switch cfg.Ranking {
	case RankRDBLength:
		return ranking.RDBLength{}, nil
	case RankERLength:
		return ranking.ERLength{}, nil
	case RankCloseFirst:
		return ranking.CloseFirst{}, nil
	case RankLoosenessPenalty:
		return ranking.LoosenessPenalty{Lambda: cfg.LoosenessLambda}, nil
	case RankHubPenalty:
		return ranking.HubPenalty{}, nil
	case RankCombined:
		return ranking.Combined{Structure: ranking.ERLength{}}, nil
	default:
		return nil, fmt.Errorf("kws: unknown ranking strategy %q", cfg.Ranking)
	}
}

// defaultLabeler labels tuples with the paper's labels for the running
// example and with "RELATION[key]" otherwise.
func defaultLabeler(db *relation.Database) func(relation.TupleID) string {
	if db.Name == "company" {
		return paperdb.DisplayLabel
	}
	return func(id relation.TupleID) string { return id.String() }
}

// Search answers the keyword query and returns ranked results.
func (e *Engine) Search(keywords ...string) ([]Result, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("kws: empty query")
	}
	answers, err := e.collect(keywords)
	if err != nil {
		return nil, err
	}
	items := make([]ranking.Item, len(answers))
	for i, a := range answers {
		items[i] = ranking.Item{Analysis: a.Analysis, Content: a.ContentScore}
	}
	ranked := ranking.TopK(items, e.scorer, e.cfg.TopK)
	byKey := make(map[string]paths.Answer, len(answers))
	for _, a := range answers {
		byKey[a.Connection.Key()] = a
	}
	results := make([]Result, 0, len(ranked))
	for _, rk := range ranked {
		a := byKey[rk.Item.Analysis.Connection.Key()]
		results = append(results, e.toResult(a, rk))
	}
	return results, nil
}

// collect runs the configured engine and normalises its answers into path
// answers with full analyses.
func (e *Engine) collect(keywords []string) ([]paths.Answer, error) {
	switch e.cfg.Engine {
	case EngineMTJNT:
		nets, err := e.mtjnt.Search(keywords)
		if err != nil {
			return nil, err
		}
		return e.annotate(extractConnections(nets), keywords)
	case EngineBANKS:
		trees, err := e.banks.Search(keywords)
		if err != nil {
			return nil, err
		}
		var conns []core.Connection
		for _, t := range trees {
			if c, ok := t.AsConnection(); ok {
				conns = append(conns, c)
			} else if len(t.Nodes) == 1 {
				if c, err := core.NewConnection(t.Nodes[0], nil); err == nil {
					conns = append(conns, c)
				}
			}
		}
		return e.annotate(conns, keywords)
	default:
		return e.paths.Search(keywords)
	}
}

func extractConnections(nets []mtjnt.Network) []core.Connection {
	out := make([]core.Connection, 0, len(nets))
	for _, n := range nets {
		out = append(out, n.Connection)
	}
	return out
}

// annotate turns plain connections into fully analysed answers.
func (e *Engine) annotate(conns []core.Connection, keywords []string) ([]paths.Answer, error) {
	tupleKeywords := make(map[relation.TupleID][]string)
	for _, kw := range keywords {
		for id := range e.idx.KeywordTuples(kw) {
			tupleKeywords[id] = append(tupleKeywords[id], kw)
		}
	}
	out := make([]paths.Answer, 0, len(conns))
	for _, c := range conns {
		var (
			an  core.Analysis
			err error
		)
		if e.cfg.DisableInstanceChecks {
			an, err = e.analyzer.Analyze(c)
		} else {
			an, err = e.analyzer.AnalyzeWithInstance(c, e.graph)
		}
		if err != nil {
			return nil, err
		}
		matched := make(map[relation.TupleID][]string)
		content := 0.0
		for _, t := range c.Tuples {
			if kws := tupleKeywords[t]; len(kws) > 0 {
				matched[t] = append([]string(nil), kws...)
			}
			content += e.idx.ContentScore(t, keywords)
		}
		out = append(out, paths.Answer{Connection: c, Analysis: an, Matches: matched, ContentScore: content})
	}
	return out, nil
}

func (e *Engine) toResult(a paths.Answer, rk ranking.Ranked) Result {
	tuples := make([]string, len(a.Connection.Tuples))
	for i, t := range a.Connection.Tuples {
		tuples[i] = e.labeler(t)
	}
	matched := make(map[string][]string, len(a.Matches))
	for id, kws := range a.Matches {
		matched[e.labeler(id)] = append([]string(nil), kws...)
	}
	return Result{
		Rank:                        rk.Rank,
		Score:                       rk.Score,
		Connection:                  a.Connection.Format(e.labeler, a.Matches),
		ConnectionWithCardinalities: a.Analysis.FormatWithCardinalities(e.labeler, a.Matches),
		Tuples:                      tuples,
		MatchedKeywords:             matched,
		RDBLength:                   a.Analysis.RDBLength,
		ERLength:                    a.Analysis.ERLength,
		Class:                       a.Analysis.Class.String(),
		Close:                       a.Analysis.Close,
		CorroboratedAtInstance:      a.Analysis.CorroboratedAtInstance,
		TransitiveNM:                a.Analysis.TransitiveNM,
		ContentScore:                a.ContentScore,
	}
}

// Match returns the identifiers of the tuples matching a single keyword,
// useful for exploring a database before searching.
func (e *Engine) Match(keyword string) []string {
	var out []string
	for _, m := range e.idx.Match(keyword) {
		out = append(out, e.labeler(m.Tuple))
	}
	return out
}

// Stats summarises the opened database.
func (e *Engine) Stats() (relations, tuples, edges int) {
	st := e.db.Stats()
	return st.Relations, st.Tuples, e.graph.EdgeCount()
}
