package kws

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/symtab"
)

// Config carries the default per-query options of an Engine; every field can
// be overridden per call through Query.
type Config struct {
	// Engine selects the default search strategy; it defaults to EnginePaths.
	Engine EngineKind
	// Ranking selects the default ranking strategy; it defaults to
	// RankCloseFirst.
	Ranking RankStrategy
	// MaxJoins is the default connection budget in joins; it defaults to 5.
	MaxJoins int
	// TopK caps the number of results (0 = all).
	TopK int
	// DisableInstanceChecks skips the instance-level corroboration
	// analysis, which is the most expensive part of result annotation.
	DisableInstanceChecks bool
	// LoosenessLambda is the penalty per transitive N:M sub-path used by
	// RankLoosenessPenalty; it defaults to 1.
	LoosenessLambda float64
	// Labeler renders tuple identifiers in results; it defaults to
	// TupleID.String. Use PaperLabeler for the paper's running example.
	Labeler Labeler
	// Parallelism bounds the worker goroutines used per query by the search
	// engines and per batch by SearchBatch (0 or negative means GOMAXPROCS,
	// 1 is fully sequential). Results are deterministic for any value.
	Parallelism int

	// Engine-level durability wiring, set through WithStore and
	// WithSnapshotEvery (see persist.go). Unexported: persistence is not a
	// per-query option and cannot be overridden through Query or
	// WithDefaults.
	store            store.Store
	snapshotEvery    int
	snapshotEverySet bool

	// Sharding wiring, set through WithShards and WithShardStores (see
	// shard.go). Unexported for the same reason as the store fields.
	shards      int
	shardStores *shard.Stores
}

// Result is one ranked answer.
type Result struct {
	// Rank is the 1-based position under the query's ranking. Streamed
	// results are unranked: Rank is 0 and Score is unset.
	Rank int
	// Score is the ranking cost (lower is better).
	Score float64
	// Connection renders the tuple path, e.g. "d1(XML) - e1(Smith)".
	Connection string
	// ConnectionWithCardinalities renders the path with per-join
	// cardinalities, e.g. "p1(XML) 1:N w_f1 N:1 e1(Smith)".
	ConnectionWithCardinalities string
	// Tuples are the identifiers of the visited tuples in order.
	Tuples []string
	// MatchedKeywords maps each matching tuple identifier to the keywords
	// it matches.
	MatchedKeywords map[string][]string
	// RDBLength and ERLength are the connection lengths at the two levels.
	RDBLength int
	ERLength  int
	// Class is the association classification ("immediate", "functional",
	// "transitive-N:M", "mixed").
	Class string
	// Close reports a guaranteed close association at the schema level.
	Close bool
	// CorroboratedAtInstance reports closeness at the instance level.
	CorroboratedAtInstance bool
	// TransitiveNM counts transitive N:M sub-paths (looseness degree).
	TransitiveNM int
	// ContentScore is the TF-IDF score of the matched attributes.
	ContentScore float64
}

// Engine answers keyword queries over one database. A single Engine is
// goroutine-safe and serves many concurrent queries, each with its own
// engine kind, ranking strategy and budgets (see Query); the expensive
// substrates — data graph, keyword index, association analyzer — are built
// once per generation and shared, while per-kind searchers are constructed
// lazily by the registered factories and cached per generation.
//
// An Engine is live: Apply mutates the underlying data and publishes a new
// immutable generation atomically, while in-flight Search, Stream and
// SearchBatch calls keep reading the generation they started on. See
// "Live updates and snapshots" in the package documentation.
type Engine struct {
	defaults Config
	labeler  Labeler

	// snap is the current generation; readers load it once per call and
	// never block on writers.
	snap atomic.Pointer[snapshot]
	// applyMu serializes writers (Apply publishes generations one at a time).
	applyMu sync.Mutex
	// stageMu serializes the composed-substrate staging of SHARDED batches.
	// Staging extends the published snapshot's copy-on-write symbol tables,
	// which tolerates many extensions of one parent but not concurrent ones;
	// the unsharded path stages under applyMu, while sharded batches stage
	// before taking applyMu (so disjoint-shard prepares overlap) and hold
	// this lock for exactly the staging call. Lock order: applyMu may be
	// held when taking stageMu, never the reverse.
	stageMu sync.Mutex

	// Durability (nil store means memory-only; see persist.go). replayed and
	// replayDur are written once by New before the engine escapes; snapErrs
	// is updated by writers and read by PersistStats concurrently.
	store         store.Store
	snapshotEvery int
	replayed      int64
	replayDur     time.Duration
	snapErrs      atomic.Int64

	// group coordinates the shard engines of a sharded engine (see
	// shard.go); nil means unsharded, and every write takes today's path.
	group *shard.Group
}

// snapshot is one immutable generation of the engine's substrates plus its
// own lazily built searcher cache. Searchers capture the generation's
// components, so they are invalidated wholesale when a new generation is
// published — the next query of each kind rebuilds its searcher over the new
// graph and index.
type snapshot struct {
	gen  uint64
	comp Components
	// shards is the published cross-shard cut of a sharded engine: readers
	// pinning this snapshot pin every shard's generation at once. Nil for
	// unsharded engines.
	shards *shard.States

	mu        sync.Mutex
	searchers map[EngineKind]Searcher
}

// Option configures an Engine at construction.
type Option func(*Config)

// WithDefaults sets the engine's default per-query options. Only the fields
// set in cfg are applied (zero values inherit, as everywhere else), so it
// composes with the other options in any order.
func WithDefaults(cfg Config) Option {
	return func(c *Config) {
		if cfg.Engine != "" {
			c.Engine = cfg.Engine
		}
		if cfg.Ranking != "" {
			c.Ranking = cfg.Ranking
		}
		if cfg.MaxJoins > 0 {
			c.MaxJoins = cfg.MaxJoins
		}
		if cfg.TopK != 0 {
			c.TopK = cfg.TopK
		}
		if cfg.DisableInstanceChecks {
			c.DisableInstanceChecks = true
		}
		if cfg.LoosenessLambda != 0 {
			c.LoosenessLambda = cfg.LoosenessLambda
		}
		if cfg.Labeler != nil {
			c.Labeler = cfg.Labeler
		}
		if cfg.Parallelism > 0 {
			c.Parallelism = cfg.Parallelism
		}
	}
}

// WithLabeler sets the engine's default labeler for rendering tuple
// identifiers in results; individual queries can still override it through
// Query.Labeler.
func WithLabeler(l Labeler) Option {
	return func(c *Config) { c.Labeler = l }
}

// WithParallelism bounds the concurrency of the engine: the number of
// queries SearchBatch runs at once and the default worker count of each
// query's internal fan-out (keyword expansions, per-source enumerations,
// the paths annotation pipeline). Zero or negative means GOMAXPROCS; 1
// makes every path fully sequential. Individual queries can still override
// it through Query.Parallelism.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// New prepares an engine for the database: it validates the configured
// defaults against the registries (before any expensive construction),
// checks the database, derives the conceptual schema, and builds the tuple
// graph and the keyword index.
//
// With WithStore, New first recovers the newest durable state: the store's
// snapshot (when one exists) replaces the caller's database as the base
// generation, and the write-ahead log after it replays through the normal
// mutation path before New returns. The caller's database then only seeds
// the very first boot; see persist.go.
func New(db *Database, opts ...Option) (*Engine, error) {
	if db == nil {
		return nil, fmt.Errorf("kws: nil database")
	}
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Engine == "" {
		cfg.Engine = EnginePaths
	}
	if cfg.Ranking == "" {
		cfg.Ranking = RankCloseFirst
	}
	if cfg.MaxJoins <= 0 {
		cfg.MaxJoins = 5
	}
	if (cfg.store != nil || cfg.shardStores != nil) && !cfg.snapshotEverySet {
		cfg.snapshotEvery = defaultSnapshotEvery
	}
	// Validate the configured names first: an unknown engine or ranking
	// must fail before the graph, the index and the analyzer are built.
	if _, err := engineFactory(cfg.Engine); err != nil {
		return nil, err
	}
	if _, err := rankerFactory(cfg.Ranking); err != nil {
		return nil, err
	}
	inner := db.internalDB()
	baseGen := uint64(0)
	if cfg.store != nil {
		loaded, gen, err := cfg.store.Load()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		if loaded != nil {
			inner, baseGen = loaded, gen
		}
	}
	// Sharded engines partition the seed (or recover the partitions from the
	// per-shard stores) before anything is built; the composed database of a
	// recovered group replaces the seed exactly as a store snapshot does.
	var (
		group  *shard.Group
		states *shard.States
	)
	if cfg.shards > 1 || cfg.shardStores != nil {
		if cfg.store != nil {
			return nil, fmt.Errorf("kws: WithStore cannot be combined with WithShards; use WithShardStores")
		}
		n := cfg.shards
		if cfg.shardStores != nil {
			if n > 1 && n != cfg.shardStores.Shards() {
				return nil, fmt.Errorf("kws: WithShards(%d) disagrees with the %d-shard store layout", n, cfg.shardStores.Shards())
			}
			n = cfg.shardStores.Shards()
		}
		g, err := shard.NewGroup(shard.NewPartitioner(n), cfg.shardStores)
		if err != nil {
			return nil, err
		}
		st, composed, err := g.Recover(inner, cfg.Parallelism)
		if err != nil {
			if cfg.shardStores != nil {
				return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
			}
			return nil, err
		}
		if composed != nil {
			inner, baseGen = composed, st.Gen
		}
		group, states = g, st
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	analyzer, err := core.Derive(inner)
	if err != nil {
		return nil, err
	}
	labeler := cfg.Labeler
	if labeler == nil {
		labeler = func(id TupleID) string { return id.String() }
	}
	// Freeze the facade before reading the data: from here on the engine
	// owns the database, and direct writes through the Database facade would
	// bypass the snapshot discipline (see Database.Insert and Engine.Apply).
	// Only WAL replay below can fail, and it unfreezes on its way out, so a
	// failed New never leaves a frozen database.
	db.freeze()
	// The tuple graph and the inverted index are independent substrates over
	// one shared tuple-ID space; intern the tuples once, then build both
	// concurrently, each fanning out per-table workers (the builders only
	// read the frozen symbol table). Parallelism 1 means fully sequential
	// everywhere, including here.
	var (
		tuples = symtab.ForDatabase(inner)
		graph  *datagraph.Graph
		idx    *index.Index
	)
	if cfg.Parallelism == 1 {
		graph = datagraph.BuildParallelWith(inner, tuples, 1)
		idx = index.BuildParallelWith(inner, tuples, 1)
	} else {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			graph = datagraph.BuildParallelWith(inner, tuples, cfg.Parallelism)
		}()
		go func() {
			defer wg.Done()
			idx = index.BuildParallelWith(inner, tuples, cfg.Parallelism)
		}()
		wg.Wait()
	}
	e := &Engine{defaults: cfg, labeler: labeler, store: cfg.store, snapshotEvery: cfg.snapshotEvery, group: group}
	if group != nil {
		// Sharded recovery replayed the per-shard WALs inside the group;
		// surface its cost through the same PersistStats fields the unsharded
		// replay below fills in.
		e.replayed, e.replayDur = group.Replayed()
	}
	e.snap.Store(&snapshot{
		gen: baseGen,
		comp: Components{
			DB:       inner,
			Graph:    graph,
			Index:    idx,
			Analyzer: analyzer,
		},
		shards:    states,
		searchers: make(map[EngineKind]Searcher),
	})
	if e.store != nil {
		if err := e.replayWAL(baseGen); err != nil {
			db.unfreeze()
			return nil, err
		}
	}
	return e, nil
}

// current returns the generation a call should read. Each public entry point
// loads it exactly once, so one call never mixes two generations.
func (e *Engine) current() *snapshot { return e.snap.Load() }

// Generation returns the number of the currently published generation. It
// starts at 0 for a freshly built engine and increases by one per successful
// Apply.
func (e *Engine) Generation() uint64 { return e.current().gen }

// resolve fills a query's zero options from the engine defaults. The engine
// kind is validated by the searcher lookup that follows every resolve;
// ranking is validated by scorerFor on the paths that rank.
func (e *Engine) resolve(q Query) (Query, error) {
	if len(q.Keywords) == 0 {
		return q, fmt.Errorf("kws: empty query")
	}
	if q.Engine == "" {
		q.Engine = e.defaults.Engine
	}
	if q.Ranking == "" {
		q.Ranking = e.defaults.Ranking
	}
	if q.MaxJoins <= 0 {
		q.MaxJoins = e.defaults.MaxJoins
	}
	if q.TopK == 0 {
		q.TopK = e.defaults.TopK
	}
	if q.InstanceChecks == ToggleDefault {
		if e.defaults.DisableInstanceChecks {
			q.InstanceChecks = ToggleOff
		} else {
			q.InstanceChecks = ToggleOn
		}
	}
	if q.LoosenessLambda == 0 {
		q.LoosenessLambda = e.defaults.LoosenessLambda
	}
	if q.Labeler == nil {
		q.Labeler = e.labeler
	}
	if q.Parallelism <= 0 {
		q.Parallelism = e.defaults.Parallelism
	}
	return q, nil
}

// scorerFor builds the scorer of a resolved query through the registered
// ranker factory.
func (e *Engine) scorerFor(q Query) (ranking.Scorer, error) {
	rf, err := rankerFactory(q.Ranking)
	if err != nil {
		return nil, err
	}
	scorer, err := rf(q)
	if err != nil {
		return nil, fmt.Errorf("kws: ranking %q: %w", q.Ranking, err)
	}
	return scorer, nil
}

// searcher returns the generation's cached searcher of the kind, building it
// through the registered factory on first use. The factory runs outside the
// lock so a slow first-use construction of one kind never stalls concurrent
// queries of the others; racing builders are possible but harmless — the
// first result cached wins.
func (s *snapshot) searcher(kind EngineKind) (Searcher, error) {
	s.mu.Lock()
	cached, ok := s.searchers[kind]
	s.mu.Unlock()
	if ok {
		return cached, nil
	}
	var built Searcher
	if s.shards != nil && kind == EnginePaths {
		// Sharded generations answer paths queries through the
		// scatter-gather matcher pinned to this snapshot's cut; every other
		// kind (and every unsharded engine) builds through the registry.
		b, err := newShardedPathsSearcher(s.comp, s.shards)
		if err != nil {
			return nil, fmt.Errorf("kws: engine %q: %w", kind, err)
		}
		built = b
	} else {
		f, err := engineFactory(kind)
		if err != nil {
			return nil, err
		}
		b, err := f(s.comp)
		if err != nil {
			return nil, fmt.Errorf("kws: engine %q: %w", kind, err)
		}
		built = b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.searchers[kind]; ok {
		return cached, nil
	}
	s.searchers[kind] = built
	return built, nil
}

// Search answers the query and returns its ranked results. It is safe to
// call concurrently with any mix of per-query options; a cancelled context
// aborts the enumeration and returns ctx.Err(). The whole call reads the
// generation current at entry, even if Apply publishes newer ones while it
// runs.
func (e *Engine) Search(ctx context.Context, q Query) ([]Result, error) {
	return e.searchOn(ctx, e.current(), q)
}

// searchOn is Search pinned to one generation; SearchBatch shares it so that
// every query of a batch reads the same snapshot.
func (e *Engine) searchOn(ctx context.Context, snap *snapshot, q Query) ([]Result, error) {
	rq, err := e.resolve(q)
	if err != nil {
		return nil, err
	}
	scorer, err := e.scorerFor(rq)
	if err != nil {
		return nil, err
	}
	s, err := snap.searcher(rq.Engine)
	if err != nil {
		return nil, err
	}
	var answers []Answer
	if err := s.Stream(ctx, rq, func(a Answer) bool {
		answers = append(answers, a)
		return true
	}); err != nil {
		return nil, err
	}
	items := make([]ranking.Item, len(answers))
	for i, a := range answers {
		items[i] = ranking.Item{Analysis: a.Analysis, Content: a.ContentScore}
	}
	ranked := ranking.TopK(items, scorer, rq.TopK)
	byKey := make(map[string]Answer, len(answers))
	for _, a := range answers {
		byKey[a.Connection.Key()] = a
	}
	results := make([]Result, 0, len(ranked))
	for _, rk := range ranked {
		a := byKey[rk.Item.Analysis.Connection.Key()]
		results = append(results, toResult(a, rk.Rank, rk.Score, rq.Labeler))
	}
	return results, nil
}

// BatchResult is the outcome of one query of a SearchBatch call: either its
// ranked results or the error that failed it.
type BatchResult struct {
	// Results are the ranked results of the query, as Search would return
	// them; nil when Err is set.
	Results []Result
	// Err is the query's failure, if any. A batch cancelled mid-flight
	// reports ctx.Err() on the queries that did not complete.
	Err error
}

// SearchBatch answers many queries over the engine's shared substrates,
// running up to the configured parallelism of them at once (WithParallelism;
// 0 means GOMAXPROCS). It returns one BatchResult per query, in query order:
// failures are reported per query, never collapsed, so a batch mixing valid
// and invalid queries still answers every valid one. When the context is
// cancelled the in-flight queries abort and the unfinished entries carry
// ctx.Err().
//
// Inside a batch the concurrency budget is spent across queries, not within
// them: a query whose Parallelism is 0 runs its internal fan-out
// sequentially (unlike a direct Search call, where 0 inherits the engine
// default). Set Query.Parallelism explicitly to give individual queries
// their own worker pools on top of the batch's.
//
// A batch pins the generation current at entry: every query of the batch
// reads the same snapshot, even when Apply publishes newer generations while
// the batch runs.
func (e *Engine) SearchBatch(ctx context.Context, queries []Query) []BatchResult {
	out := make([]BatchResult, len(queries))
	snap := e.current()
	// A query's own fan-out shares the batch budget poorly if both default
	// to GOMAXPROCS; batched queries therefore run their internals
	// sequentially unless the query overrides Parallelism itself.
	_ = parallel.ForEach(ctx, e.defaults.Parallelism, len(queries), func(ctx context.Context, i int) error {
		q := queries[i]
		if q.Parallelism == 0 {
			q.Parallelism = 1
		}
		results, err := e.searchOn(ctx, snap, q)
		out[i] = BatchResult{Results: results, Err: err}
		return nil // per-query errors never abort the batch
	})
	// Queries never started before a cancellation keep their zero value;
	// stamp them with the context error so callers can tell them apart.
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Results == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// Stream answers the query incrementally: each result is handed to yield as
// soon as the search engine produces it, in discovery order and without
// ranking (Rank and Score are unset, and Query.Ranking is not consulted —
// ranking needs the full result set; use Search for ranked output). The
// stream stops when yield returns false, when TopK results have been
// delivered, or when the context is cancelled — in which case ctx.Err() is
// returned.
func (e *Engine) Stream(ctx context.Context, q Query, yield func(Result) bool) error {
	rq, err := e.resolve(q)
	if err != nil {
		return err
	}
	s, err := e.current().searcher(rq.Engine)
	if err != nil {
		return err
	}
	delivered := 0
	return s.Stream(ctx, rq, func(a Answer) bool {
		if !yield(toResult(a, 0, 0, rq.Labeler)) {
			return false
		}
		delivered++
		return rq.TopK <= 0 || delivered < rq.TopK
	})
}

// Results returns the query's streamed results as an iterator:
//
//	for r, err := range engine.Results(ctx, q) {
//		if err != nil { ... }
//		fmt.Println(r.Connection)
//	}
//
// Like Stream, results arrive unranked in discovery order; a non-nil error
// (including ctx.Err() on cancellation) is yielded as the final element.
func (e *Engine) Results(ctx context.Context, q Query) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		stopped := false
		err := e.Stream(ctx, q, func(r Result) bool {
			if !yield(r, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Result{}, err)
		}
	}
}

func toResult(a Answer, rank int, score float64, label Labeler) Result {
	tuples := make([]string, len(a.Connection.Tuples))
	for i, t := range a.Connection.Tuples {
		tuples[i] = label(t)
	}
	// Distinct tuple IDs may render to the same label (Labeler is
	// caller-supplied), so the label-keyed map is filled in sorted-ID order:
	// colliding entries merge deterministically instead of one surviving at
	// random per map iteration order.
	matched := make(map[string][]string, len(a.Matches))
	ids := make([]TupleID, 0, len(a.Matches))
	for id := range a.Matches {
		ids = append(ids, id)
	}
	relation.SortTupleIDs(ids)
	for _, id := range ids {
		l := label(id)
		matched[l] = append(matched[l], a.Matches[id]...)
	}
	return Result{
		Rank:                        rank,
		Score:                       score,
		Connection:                  a.Connection.Format(label, a.Matches),
		ConnectionWithCardinalities: a.Analysis.FormatWithCardinalities(label, a.Matches),
		Tuples:                      tuples,
		MatchedKeywords:             matched,
		RDBLength:                   a.Analysis.RDBLength,
		ERLength:                    a.Analysis.ERLength,
		Class:                       a.Analysis.Class.String(),
		Close:                       a.Analysis.Close,
		CorroboratedAtInstance:      a.Analysis.CorroboratedAtInstance,
		TransitiveNM:                a.Analysis.TransitiveNM,
		ContentScore:                a.ContentScore,
	}
}

// Match returns the identifiers of the tuples matching a single keyword in
// the current generation, useful for exploring a database before searching.
func (e *Engine) Match(keyword string) []string {
	var out []string
	for _, m := range e.current().comp.Index.Match(keyword) {
		out = append(out, e.labeler(m.Tuple))
	}
	return out
}

// Stats summarises the current generation of the database.
func (e *Engine) Stats() (relations, tuples, edges int) {
	snap := e.current()
	st := snap.comp.DB.Stats()
	return st.Relations, st.Tuples, snap.comp.Graph.EdgeCount()
}
