package kws

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagraph"
	"repro/internal/index"
	"repro/internal/paperdb"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/symtab"
	"repro/internal/workload"
)

// The shard-determinism property: a sharded engine must be indistinguishable
// — byte for byte, across Search, Stream and SearchBatch, successes and
// failures alike — from the unsharded engine over the same data, at every
// shard count, after every mutation batch. These tests drive the same seeded
// mutation sequences as the rebuild-equivalence suite through an unsharded
// reference engine and a sharded engine per swept count, in lockstep, and
// additionally pin each shard's internal graph and index against a fresh
// build of that shard's partition of the mirror database.

// shardSweep is the shard counts the determinism suite sweeps: the collapse
// case, even and odd counts, a count exceeding some tables' tuple counts.
var shardSweep = []int{1, 2, 3, 4, 7}

func TestShardDeterminismPaperDB(t *testing.T) {
	batches := 10
	if testing.Short() {
		batches = 3
	}
	runShardDeterminism(t, paperdb.MustLoad, 1, batches)
}

func TestShardDeterminismWorkload(t *testing.T) {
	batches := 6
	if testing.Short() {
		batches = 2
	}
	gen := func() *relation.Database {
		db, err := workload.Generate(workload.ScaledConfig(2, 99))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	runShardDeterminism(t, gen, 2, batches)
}

// TestWithShardsOneCollapses pins the n<=1 contract: WithShards(1) builds a
// plain unsharded engine — no group, no vector, no per-shard stats.
func TestWithShardsOneCollapses(t *testing.T) {
	e, err := New(&Database{db: paperdb.MustLoad()}, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.group != nil {
		t.Fatal("WithShards(1) built a shard group")
	}
	if v := e.GenerationVector(); v != nil {
		t.Fatalf("GenerationVector() = %v, want nil", v)
	}
	if _, ok := e.ShardStats(); ok {
		t.Fatal("ShardStats() reported ok on an unsharded engine")
	}
}

func runShardDeterminism(t *testing.T, freshDB func() *relation.Database, seed int64, batches int) {
	ctx := context.Background()
	reference, err := New(&Database{db: freshDB()})
	if err != nil {
		t.Fatal(err)
	}
	engines := make(map[int]*Engine, len(shardSweep))
	for _, n := range shardSweep {
		e, err := New(&Database{db: freshDB()}, WithShards(n))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", n, err)
		}
		if n > 1 && e.group == nil {
			t.Fatalf("WithShards(%d) did not build a shard group", n)
		}
		engines[n] = e
	}
	mirror := freshDB()
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	for b := 0; b < batches; b++ {
		nOps := 1 + rng.Intn(4)
		ops := make([]Op, 0, nOps)
		for i := 0; i < nOps; i++ {
			op, ok := randomOp(t, rng, mirror, &counter)
			if !ok {
				continue
			}
			replayOp(t, mirror, op)
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			continue
		}
		wantGen, err := reference.Apply(ctx, Mutation{Ops: ops})
		if err != nil {
			t.Fatalf("batch %d: reference Apply: %v", b, err)
		}
		for _, n := range shardSweep {
			gen, err := engines[n].Apply(ctx, Mutation{Ops: ops})
			if err != nil {
				t.Fatalf("batch %d: shards=%d: Apply: %v", b, n, err)
			}
			if gen != wantGen {
				t.Fatalf("batch %d: shards=%d: generation %d, reference %d", b, n, gen, wantGen)
			}
			requireShardedOutputEqual(t, b, n, reference, engines[n])
			requireShardStateMatchesMirror(t, b, n, engines[n], mirror)
		}
	}
}

// requireShardedOutputEqual byte-compares every read surface of the sharded
// engine against the unsharded reference: ranked Search output, unranked
// Stream order, the full SearchBatch result set, and the exact error text of
// failing queries.
func requireShardedOutputEqual(t *testing.T, batch, n int, reference, sharded *Engine) {
	t.Helper()
	ctx := context.Background()
	queries := make([]Query, 0, len(equivalenceQueries))
	for _, kws := range equivalenceQueries {
		queries = append(queries, Query{Keywords: kws, MaxJoins: 4})
	}
	for _, q := range queries {
		want, wantErr := reference.Search(ctx, q)
		got, gotErr := sharded.Search(ctx, q)
		if !errTextEqual(wantErr, gotErr) {
			t.Fatalf("batch %d shards=%d: Search(%v) error %q, reference %q",
				batch, n, q.Keywords, errText(gotErr), errText(wantErr))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d shards=%d: Search(%v) diverged:\nsharded:   %v\nreference: %v",
				batch, n, q.Keywords, renders(got), renders(want))
		}

		var wantStream, gotStream []Result
		wantErr = reference.Stream(ctx, q, func(r Result) bool { wantStream = append(wantStream, r); return true })
		gotErr = sharded.Stream(ctx, q, func(r Result) bool { gotStream = append(gotStream, r); return true })
		if !errTextEqual(wantErr, gotErr) {
			t.Fatalf("batch %d shards=%d: Stream(%v) error %q, reference %q",
				batch, n, q.Keywords, errText(gotErr), errText(wantErr))
		}
		if !reflect.DeepEqual(gotStream, wantStream) {
			t.Fatalf("batch %d shards=%d: Stream(%v) diverged", batch, n, q.Keywords)
		}
	}

	wantBatch := reference.SearchBatch(ctx, queries)
	gotBatch := sharded.SearchBatch(ctx, queries)
	if len(gotBatch) != len(wantBatch) {
		t.Fatalf("batch %d shards=%d: SearchBatch sizes %d vs %d", batch, n, len(gotBatch), len(wantBatch))
	}
	for i := range wantBatch {
		if !errTextEqual(wantBatch[i].Err, gotBatch[i].Err) {
			t.Fatalf("batch %d shards=%d: SearchBatch[%d] error %q, reference %q",
				batch, n, i, errText(gotBatch[i].Err), errText(wantBatch[i].Err))
		}
		if !reflect.DeepEqual(gotBatch[i].Results, wantBatch[i].Results) {
			t.Fatalf("batch %d shards=%d: SearchBatch[%d] results diverged", batch, n, i)
		}
	}
}

// requireShardStateMatchesMirror pins each shard's internal substrates: the
// shard's partition database, tuple graph and inverted index must equal a
// fresh build over the mirror database's corresponding partition — the
// per-shard analogue of the rebuild-equivalence property.
func requireShardStateMatchesMirror(t *testing.T, batch, n int, e *Engine, mirror *relation.Database) {
	t.Helper()
	snap := e.current()
	if n <= 1 {
		if snap.shards != nil {
			t.Fatalf("batch %d: shards=%d engine carries shard states", batch, n)
		}
		return
	}
	if snap.shards == nil {
		t.Fatalf("batch %d: shards=%d engine has no shard states", batch, n)
	}
	if got := len(snap.shards.Parts); got != n {
		t.Fatalf("batch %d: %d parts, want %d", batch, got, n)
	}
	refParts, err := shard.SplitDatabase(mirror, e.group.Partitioner())
	if err != nil {
		t.Fatalf("batch %d shards=%d: split mirror: %v", batch, n, err)
	}
	for s, part := range snap.shards.Parts {
		ref := refParts[s]
		if got, want := part.DB.Stats().Tuples, ref.Stats().Tuples; got != want {
			t.Fatalf("batch %d shards=%d: shard %d holds %d tuples, mirror partition %d", batch, n, s, got, want)
		}
		for _, name := range ref.TableNames() {
			lt, _ := part.DB.Table(name)
			rt, _ := ref.Table(name)
			if lt.Len() != rt.Len() {
				t.Fatalf("batch %d shards=%d: shard %d table %s has %d tuples, mirror %d",
					batch, n, s, name, lt.Len(), rt.Len())
			}
			for i, tup := range lt.Tuples() {
				want := rt.Tuples()[i]
				if tup.ID() != want.ID() || tup.String() != want.String() {
					t.Fatalf("batch %d shards=%d: shard %d table %s tuple %d: %v != %v",
						batch, n, s, name, i, tup, want)
				}
			}
		}
		tuples := symtab.ForDatabase(ref)
		refGraph := datagraph.BuildParallelWith(ref, tuples, 1)
		refIdx := index.BuildParallelWith(ref, tuples, 1)
		if got, want := graphDump(part.Graph), graphDump(refGraph); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d shards=%d: shard %d graph diverged from fresh partition build", batch, n, s)
		}
		if part.Index.DocCount() != refIdx.DocCount() || part.Index.TermCount() != refIdx.TermCount() {
			t.Fatalf("batch %d shards=%d: shard %d index %d docs / %d terms, fresh %d / %d", batch, n, s,
				part.Index.DocCount(), part.Index.TermCount(), refIdx.DocCount(), refIdx.TermCount())
		}
		if got, want := part.Index.Dump(), refIdx.Dump(); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d shards=%d: shard %d index postings diverged from fresh partition build", batch, n, s)
		}
	}
	// The vector is internally consistent: entry s is part s's generation.
	vec := e.GenerationVector()
	for s, part := range snap.shards.Parts {
		if vec[s] != part.Gen {
			t.Fatalf("batch %d shards=%d: vector[%d]=%d, part generation %d", batch, n, s, vec[s], part.Gen)
		}
	}
}

func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// errTextEqual compares failures byte for byte: the sharded engine must not
// only fail when the reference fails, it must fail with the identical text.
func errTextEqual(a, b error) bool { return errText(a) == errText(b) }
