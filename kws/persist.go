package kws

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/store"
)

// Durability. An engine constructed with WithStore writes every applied
// mutation to the store's write-ahead log before publishing the generation:
// Apply returns a generation number only after the batch is durable, so a
// crash at any later point replays it on the next New. Periodic snapshots
// (WithSnapshotEvery) bound replay time by serializing the full relational
// state and truncating the log behind it; graph, index and searchers are
// never persisted — recovery rebuilds them through the same code paths as a
// cold start, which keeps the on-disk format small and its fidelity pinned
// by the rebuild-equivalence tests.
//
// Recovery runs inside New: the store's snapshot (when present) replaces the
// caller's database as the base generation, then the logged mutations after
// it replay through the normal staging path. Engines without a store behave
// exactly as before — no extra branches on the read path, no persistence
// errors surfacing from Search.

// ErrPersistence wraps store failures surfaced through Apply, Checkpoint or
// New: the mutation (or recovery) did NOT take effect, and the engine keeps
// serving the generation it was on. Callers can errors.Is against it to map
// durability failures to a distinct status (httpapi returns 500, not 400).
var ErrPersistence = errors.New("kws: persistence failure")

// ErrCorruptStore reports unrecoverable on-disk corruption found during
// recovery: a WAL record that fails its checksum with more data behind it,
// a generation gap, or an unreadable snapshot. (A torn final record —
// a crash mid-append — is not corruption; recovery truncates it silently,
// since it was never acknowledged.) New wraps it in ErrPersistence;
// errors.Is sees through the wrapping.
var ErrCorruptStore = store.ErrCorrupt

// Store is the durability interface WithStore plumbs the engine's
// write-ahead log and snapshots through (alias of the internal store
// package's interface, so external modules can hold and implement one).
// OpenStore returns the file-backed implementation.
type Store = store.Store

// OpenStore opens — creating it if needed — the file-backed durability
// store rooted at dir: a CRC-framed write-ahead log plus the newest
// snapshot, recovering from torn writes left by a crash. Pass the result
// to WithStore; close it after the engine is discarded.
func OpenStore(dir string) (Store, error) {
	return store.Open(dir)
}

// WithStore attaches a durability store to the engine. New recovers the
// newest durable state from it (snapshot plus logged mutations), and every
// later Apply appends its batch to the store's write-ahead log — fsynced
// before the new generation number is returned. The engine owns the store
// until the engine is discarded; callers must not touch it concurrently.
func WithStore(s store.Store) Option {
	return func(c *Config) { c.store = s }
}

// WithSnapshotEvery sets how many generations elapse between automatic
// snapshots: every n-th generation is serialized and the log truncated
// behind it. n <= 0 disables periodic snapshots (the log then grows until
// Checkpoint is called). Without this option an engine with a store
// snapshots every 64 generations. No effect without WithStore.
func WithSnapshotEvery(n int) Option {
	return func(c *Config) {
		c.snapshotEvery = n
		c.snapshotEverySet = true
	}
}

// defaultSnapshotEvery is the snapshot cadence when WithStore is configured
// but WithSnapshotEvery is not.
const defaultSnapshotEvery = 64

// PersistStats reports the durability state of an engine built WithStore.
type PersistStats struct {
	// WALBytes and WALRecords describe the current write-ahead log.
	WALBytes   int64
	WALRecords int64
	// SnapshotGeneration is the generation of the latest durable snapshot
	// (0 when none has been written).
	SnapshotGeneration uint64
	// SnapshotBytes is the size of the latest durable snapshot.
	SnapshotBytes int64
	// ReplayedRecords counts the WAL records replayed by New to recover
	// this engine, and ReplayDuration is how long that replay took.
	ReplayedRecords int64
	ReplayDuration  time.Duration
	// SnapshotErrors counts failed automatic snapshots since New. Snapshot
	// failures never fail Apply — the WAL still holds every generation —
	// but a growing count means the log is not being truncated.
	SnapshotErrors int64
}

// PersistStats returns the engine's durability state; ok is false when the
// engine was built without WithStore (or without WithShardStores, for
// sharded engines). A sharded engine reports the sums across its per-shard
// stores, with SnapshotGeneration the lowest shard snapshot — the bound on
// replay depth; ShardStats breaks the same numbers out per shard.
func (e *Engine) PersistStats() (stats PersistStats, ok bool) {
	if e.group != nil && e.group.Durable() {
		stats = PersistStats{
			ReplayedRecords: e.replayed,
			ReplayDuration:  e.replayDur,
			SnapshotErrors:  e.snapErrs.Load(),
		}
		for s := 0; s < e.group.Shards(); s++ {
			st := e.group.Stores().Shard(s).Stats()
			stats.WALBytes += st.WALBytes
			stats.WALRecords += st.WALRecords
			stats.SnapshotBytes += st.SnapshotBytes
			if s == 0 || st.SnapshotGen < stats.SnapshotGeneration {
				stats.SnapshotGeneration = st.SnapshotGen
			}
		}
		return stats, true
	}
	if e.store == nil {
		return PersistStats{}, false
	}
	st := e.store.Stats()
	return PersistStats{
		WALBytes:           st.WALBytes,
		WALRecords:         st.WALRecords,
		SnapshotGeneration: st.SnapshotGen,
		SnapshotBytes:      st.SnapshotBytes,
		ReplayedRecords:    e.replayed,
		ReplayDuration:     e.replayDur,
		SnapshotErrors:     e.snapErrs.Load(),
	}, true
}

// Checkpoint forces a snapshot of the current generation, truncating the
// write-ahead log behind it. It serializes against concurrent Apply calls
// and is a no-op on an engine without a store. kwsd calls it on graceful
// shutdown so the next boot loads one snapshot instead of replaying the log.
func (e *Engine) Checkpoint() error {
	if e.group != nil {
		if !e.group.Durable() {
			return nil
		}
		e.applyMu.Lock()
		defer e.applyMu.Unlock()
		if err := e.group.Checkpoint(e.current().shards); err != nil {
			e.snapErrs.Add(1)
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		return nil
	}
	if e.store == nil {
		return nil
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	snap := e.current()
	if err := e.store.Snapshot(snap.gen, snap.comp.DB); err != nil {
		e.snapErrs.Add(1)
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	return nil
}

// maybeSnapshot writes an automatic snapshot when the published generation
// hits the configured cadence. Failures are counted, not surfaced: the WAL
// already holds the generation, so durability is intact and only replay
// time suffers.
func (e *Engine) maybeSnapshot(next *snapshot) {
	if e.store == nil || e.snapshotEvery <= 0 || next.gen%uint64(e.snapshotEvery) != 0 {
		return
	}
	if err := e.store.Snapshot(next.gen, next.comp.DB); err != nil {
		e.snapErrs.Add(1)
	}
}

// replayWAL applies the store's logged mutations after the base generation
// through the normal staging path, publishing one generation per record.
// New calls it as the last construction step; any failure fails New.
func (e *Engine) replayWAL(after uint64) error {
	start := time.Now()
	err := e.store.Replay(after, func(gen uint64, sm store.Mutation) error {
		snap := e.current()
		if gen != snap.gen+1 {
			return fmt.Errorf("%w: replay generation %d onto %d", ErrPersistence, gen, snap.gen)
		}
		//kwslint:ignore ctxflow New has no ctx parameter; boot-time replay is not cancellable
		next, err := e.stage(context.Background(), snap, fromStoreMutation(sm))
		if err != nil {
			return fmt.Errorf("%w: replay generation %d: %v", ErrPersistence, gen, err)
		}
		e.snap.Store(next)
		e.replayed++
		return nil
	})
	e.replayDur = time.Since(start)
	if err != nil && !errors.Is(err, ErrPersistence) {
		err = fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	return err
}

// toStoreMutation converts a mutation to the store's neutral form. Op kinds
// share numeric values by construction; the maps are passed by reference —
// the store encodes them before Append returns, so later caller mutation of
// the maps cannot corrupt the log.
func toStoreMutation(m Mutation) store.Mutation {
	ops := make([]store.Op, len(m.Ops))
	for i, op := range m.Ops {
		ops[i] = store.Op{Kind: int(op.Kind), Table: op.Table, Key: op.Key, Row: op.Row}
	}
	return store.Mutation{Ops: ops}
}

func fromStoreMutation(sm store.Mutation) Mutation {
	ops := make([]Op, len(sm.Ops))
	for i, op := range sm.Ops {
		ops[i] = Op{Kind: OpKind(op.Kind), Table: op.Table, Key: op.Key, Row: op.Row}
	}
	return Mutation{Ops: ops}
}
