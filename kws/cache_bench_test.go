package kws

import (
	"context"
	"testing"
)

// BenchmarkCachedSearch compares a cache hit against the uncached search it
// replaces, on the scale-4 workload. The acceptance bar of the serving
// change is hit >= 10x faster than uncached (the hit pays only a key build,
// one shard lock and a deep copy of the result set).
func BenchmarkCachedSearch(b *testing.B) {
	engine, err := New(SyntheticCompany(4, 42))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "databases"}, MaxJoins: 3}
	probe, err := engine.Search(ctx, q)
	if err != nil {
		b.Fatal(err)
	}
	if len(probe) == 0 {
		b.Fatal("benchmark query has no results on the scale-4 workload")
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Search(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := NewCache(engine, CacheOptions{})
		if _, err := cache.Search(ctx, q); err != nil { // warm the entry
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Search(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := cache.Stats(); st.Hits != int64(b.N) {
			b.Fatalf("stats = %+v, want %d hits", st, b.N)
		}
	})
}
