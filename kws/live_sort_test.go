package kws

import (
	"testing"

	"repro/internal/relation"
)

// TestStagerNetIsSorted guards net()'s ordering contract: the per-batch
// removed/added maps must drain into ID-sorted slices, not map order.
func TestStagerNetIsSorted(t *testing.T) {
	db := PaperExample().db
	st := newStager(db)
	for _, tbl := range db.Tables() {
		for _, tup := range tbl.Tuples() {
			// Remove first, then add: recordRemove of a tuple added in the
			// same batch would cancel the addition.
			st.recordRemove(tup)
			st.recordAdd(tup)
		}
	}
	for i := 0; i < 20; i++ {
		removed, added := st.net()
		for _, s := range [][]*relation.Tuple{removed, added} {
			if len(s) < 2 {
				t.Fatalf("expected several tuples, got %d", len(s))
			}
			for j := 1; j < len(s); j++ {
				if !s[j-1].ID().Less(s[j].ID()) {
					t.Fatalf("run %d: net() out of order at %d: %v !< %v", i, j, s[j-1].ID(), s[j].ID())
				}
			}
		}
	}
}
