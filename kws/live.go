package kws

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// OpKind names the kind of one mutation operation.
type OpKind int

const (
	// OpInsert adds a new tuple.
	OpInsert OpKind = iota + 1
	// OpDelete removes an existing tuple by primary key.
	OpDelete
	// OpUpdate rewrites columns of an existing tuple, selected by primary
	// key. Updating a primary-key column moves the tuple to a new identity.
	OpUpdate
)

// String renders the kind for error messages.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation of a Mutation. Construct them with Insert, Delete and
// Update.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Table is the target table.
	Table string
	// Key selects the target tuple of a delete or update: one entry per
	// primary-key column. Ignored by inserts.
	Key map[string]any
	// Row carries column values: the full row of an insert, or the columns
	// to overwrite for an update (a nil value sets the column to NULL).
	// Ignored by deletes.
	Row map[string]any
}

// Insert returns an op adding a row to a table; values follow the same
// conventions as Database.Insert (string, int, int64, float64, bool or nil).
func Insert(table string, row map[string]any) Op {
	return Op{Kind: OpInsert, Table: table, Row: row}
}

// Delete returns an op removing the tuple whose primary-key columns equal
// key. Deleting a referenced tuple is allowed: the references dangle, drop
// out of the graph, and re-resolve if a tuple with the same key is inserted
// again — mirroring how New treats dangling references.
func Delete(table string, key map[string]any) Op {
	return Op{Kind: OpDelete, Table: table, Key: key}
}

// Update returns an op overwriting the given columns of the tuple whose
// primary-key columns equal key; columns absent from set keep their value,
// and a nil value sets the column to NULL.
func Update(table string, key, set map[string]any) Op {
	return Op{Kind: OpUpdate, Table: table, Key: key, Row: set}
}

// Mutation is an ordered batch of operations applied atomically by
// Engine.Apply: later ops observe earlier ones (a batch may delete a key and
// re-insert it), and either the whole batch becomes one new generation or,
// on any error, no change is published at all.
type Mutation struct {
	Ops []Op
}

// Apply executes the mutation against the engine's current generation and
// atomically publishes the result as the next generation, incrementally
// maintaining the tuple graph and the keyword index instead of rebuilding
// them. It returns the new generation number.
//
// Readers never block: Search, Stream and SearchBatch calls in flight keep
// the snapshot they started on, and calls starting after Apply returns see
// the new generation. Writers are serialized; concurrent Apply calls queue.
//
// On any failure — unknown table or column, type mismatch, duplicate or
// missing primary key, or context cancellation between operations — Apply
// returns the error and publishes nothing: the engine keeps answering from
// the generation it was on. An empty mutation is a no-op returning the
// current generation.
//
// On an engine built WithStore the batch is appended to the write-ahead log
// and fsynced before the new generation is published or returned, so every
// acknowledged generation survives a crash; a failed append (ErrPersistence)
// publishes nothing. Automatic snapshot failures after publication never
// fail Apply — see PersistStats.SnapshotErrors.
func (e *Engine) Apply(ctx context.Context, m Mutation) (uint64, error) {
	if e.group != nil {
		return e.applySharded(ctx, m)
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	snap := e.current()
	if len(m.Ops) == 0 {
		return snap.gen, nil
	}
	next, err := e.stage(ctx, snap, m)
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		// Cancelled after staging but before the log append: nothing is
		// durable and the published snapshot stays untouched. No further
		// cancellation checks happen below — once the append lands, the
		// generation must be published, or the next Apply would try to
		// append a duplicate generation.
		return 0, err
	}
	if e.store != nil {
		if err := e.store.Append(next.gen, toStoreMutation(m)); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	e.snap.Store(next)
	e.maybeSnapshot(next)
	return next.gen, nil
}

// stage runs the mutation batch against snap's data and builds — but does
// not publish — the next generation. Apply publishes the result after the
// durability append; WAL replay publishes it directly. Callers hold applyMu.
func (e *Engine) stage(ctx context.Context, snap *snapshot, m Mutation) (*snapshot, error) {
	next, _, _, err := e.stageNet(ctx, snap, m)
	return next, err
}

// stageNet is stage exposing the batch's net tuple delta alongside the built
// snapshot: the sharded apply path splits that delta by owner shard to drive
// the per-shard engines, while the composed substrates it maintains here stay
// the single source every reader answers from.
func (e *Engine) stageNet(ctx context.Context, snap *snapshot, m Mutation) (*snapshot, []*relation.Tuple, []*relation.Tuple, error) {
	st := newStager(snap.comp.DB)
	for i, op := range m.Ops {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		if err := st.apply(op); err != nil {
			return nil, nil, nil, fmt.Errorf("kws: apply: op %d (%s %s): %w", i, op.Kind, op.Table, err)
		}
	}
	removed, added := st.net()
	graph := snap.comp.Graph.ApplyDelta(st.db, removed, added)
	idx := snap.comp.Index.Apply(st.db, removed, added)
	// Tuple mutations never change the catalog, so the conceptual schema and
	// mapping carry over; only the analyzer's database binding is refreshed.
	analyzer, err := core.NewAnalyzer(st.db, snap.comp.Analyzer.Schema(), snap.comp.Analyzer.Mapping())
	if err != nil {
		return nil, nil, nil, err
	}
	return &snapshot{
		gen: snap.gen + 1,
		comp: Components{
			DB:       st.db,
			Graph:    graph,
			Index:    idx,
			Analyzer: analyzer,
		},
		searchers: make(map[EngineKind]Searcher),
	}, removed, added, nil
}

// stager accumulates a mutation batch over a copy-on-write clone of the
// database: the catalog is cloned up front (cheap — it shares every table),
// and each table is cloned at most once, on its first write. Alongside the
// data it tracks the net tuple changes of the batch, which drive the
// incremental graph and index maintenance.
type stager struct {
	db     *relation.Database
	cloned map[string]bool
	// removed and added hold the net effect per tuple identity: a tuple
	// inserted and deleted within the batch cancels out, an update appears
	// as its old version in removed and its new one in added.
	removed map[relation.TupleID]*relation.Tuple
	added   map[relation.TupleID]*relation.Tuple
}

func newStager(base *relation.Database) *stager {
	return &stager{
		db:      base.Clone(),
		cloned:  make(map[string]bool),
		removed: make(map[relation.TupleID]*relation.Tuple),
		added:   make(map[relation.TupleID]*relation.Tuple),
	}
}

// table returns the named table, cloned for writing (once per batch).
func (st *stager) table(name string) (*relation.Table, error) {
	t, ok := st.db.Table(name)
	if !ok {
		return nil, fmt.Errorf("unknown table %s", name)
	}
	if !st.cloned[name] {
		t = t.Clone()
		if err := st.db.SetTable(t); err != nil {
			return nil, err
		}
		st.cloned[name] = true
	}
	return t, nil
}

func (st *stager) apply(op Op) error {
	t, err := st.table(op.Table)
	if err != nil {
		return err
	}
	switch op.Kind {
	case OpInsert:
		values, err := coerceRow(t, op.Row)
		if err != nil {
			return err
		}
		tup, err := t.Insert(values)
		if err != nil {
			return err
		}
		st.recordAdd(tup)
		return nil
	case OpDelete:
		key, err := encodePK(t, op.Key)
		if err != nil {
			return err
		}
		tup, ok := t.Delete(key)
		if !ok {
			return fmt.Errorf("no tuple with key %q", key)
		}
		st.recordRemove(tup)
		return nil
	case OpUpdate:
		key, err := encodePK(t, op.Key)
		if err != nil {
			return err
		}
		old, ok := t.ByPrimaryKey(key)
		if !ok {
			return fmt.Errorf("no tuple with key %q", key)
		}
		merged := make(map[string]relation.Value, len(t.Schema().Columns))
		for _, col := range t.Schema().Columns {
			if v := old.Value(col.Name); !v.IsNull() {
				merged[col.Name] = v
			}
		}
		set, err := coerceRow(t, op.Row)
		if err != nil {
			return err
		}
		for col, v := range set {
			merged[col] = v // explicit NULLs flow through; Insert validates
		}
		t.Delete(key)
		tup, err := t.Insert(merged)
		if err != nil {
			return err // batch is abandoned wholesale, no rollback needed
		}
		st.recordRemove(old)
		st.recordAdd(tup)
		return nil
	default:
		return fmt.Errorf("unknown op kind %d", int(op.Kind))
	}
}

func (st *stager) recordAdd(tup *relation.Tuple) {
	// A previous removal of the same identity stays recorded: the old
	// version leaves the substrates, the new one enters them.
	st.added[tup.ID()] = tup
}

func (st *stager) recordRemove(tup *relation.Tuple) {
	id := tup.ID()
	if st.added[id] == tup {
		// The tuple was created earlier in this same batch: it never reached
		// the published substrates, so its removal cancels the addition.
		delete(st.added, id)
		return
	}
	st.removed[id] = tup
}

// net returns the batch's net tuple changes in deterministic (sorted) order.
func (st *stager) net() (removed, added []*relation.Tuple) {
	removed = make([]*relation.Tuple, 0, len(st.removed))
	for _, tup := range st.removed {
		removed = append(removed, tup)
	}
	added = make([]*relation.Tuple, 0, len(st.added))
	for _, tup := range st.added {
		added = append(added, tup)
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].ID().Less(removed[j].ID()) })
	sort.Slice(added, func(i, j int) bool { return added[i].ID().Less(added[j].ID()) })
	return removed, added
}

// coerceRow converts a public column->value map into relation values using
// the schema's column types, exactly as Database.Insert does.
func coerceRow(t *relation.Table, row map[string]any) (map[string]relation.Value, error) {
	values := make(map[string]relation.Value, len(row))
	for col, v := range row {
		def, ok := t.Schema().Column(col)
		if !ok {
			return nil, fmt.Errorf("table %s has no column %s", t.Name(), col)
		}
		rv, err := toValue(v, def.Type)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", t.Name(), col, err)
		}
		values[col] = rv
	}
	return values, nil
}

// encodePK resolves a primary-key selector map into the encoded key used by
// the table indexes. Every primary-key column must be present; extra columns
// are rejected to keep typos loud.
func encodePK(t *relation.Table, key map[string]any) (string, error) {
	s := t.Schema()
	if len(key) != len(s.PrimaryKey) {
		return "", fmt.Errorf("key must name exactly the primary-key columns %v", s.PrimaryKey)
	}
	vals := make([]relation.Value, len(s.PrimaryKey))
	for i, col := range s.PrimaryKey {
		v, ok := key[col]
		if !ok {
			return "", fmt.Errorf("key is missing primary-key column %s", col)
		}
		def, _ := s.Column(col)
		rv, err := toValue(v, def.Type)
		if err != nil {
			return "", fmt.Errorf("%s.%s: %w", t.Name(), col, err)
		}
		if rv.IsNull() {
			return "", fmt.Errorf("key column %s is NULL", col)
		}
		vals[i] = rv
	}
	return relation.EncodeKey(vals), nil
}
