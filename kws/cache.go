package kws

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// CacheOptions configures a Cache. The zero value picks sensible defaults
// (64 MiB across 16 shards).
type CacheOptions struct {
	// MaxBytes bounds the estimated memory held by cached result sets,
	// spread evenly across the shards. Once a shard exceeds its slice of the
	// budget it evicts least-recently-used entries until it fits again.
	// Zero or negative means the 64 MiB default.
	MaxBytes int64
	// Shards is the number of independently locked LRU segments; more
	// shards mean less contention between concurrent queries. Zero or
	// negative means the default of 16.
	Shards int
}

const (
	defaultCacheBytes  = 64 << 20
	defaultCacheShards = 16
)

// Cache serves Engine.Search results from a bounded, sharded LRU keyed by
// the normalized query AND the engine generation. The generation in the key
// is the whole invalidation story: Engine.Apply publishes a new generation,
// so every entry cached before the mutation simply stops being looked up —
// no scanning, no bookkeeping — and ages out of the LRU as fresh entries
// displace it.
//
// Concurrent identical misses are collapsed: one call computes the result
// while the others wait for it (singleflight), so a thundering herd on a
// popular query costs one search. Results handed out are deep copies;
// callers may mutate them freely.
//
// Queries are normalized before keying: unset options are resolved to the
// engine defaults, and options that cannot change the result bytes
// (Parallelism — the stack is deterministic at every setting) are dropped,
// so Query{Keywords: ...} and its fully spelled-out equivalent share one
// entry. Queries carrying a custom Labeler bypass the cache entirely (a
// function cannot be keyed); everything else is cacheable.
//
// A Cache is goroutine-safe. A hit is always byte-identical to what an
// uncached Engine.Search pinned to the same generation would return; the
// equivalence and race tests in this package enforce it.
type Cache struct {
	engine *Engine
	shards []*cacheShard
	seed   maphash.Seed

	hits      atomic.Int64
	misses    atomic.Int64
	collapses atomic.Int64
	evictions atomic.Int64
	bypasses  atomic.Int64
}

// CacheStats is a point-in-time snapshot of a Cache's counters and size.
type CacheStats struct {
	// Hits counts lookups answered from a stored entry.
	Hits int64
	// Misses counts lookups that ran the underlying search: the leader of
	// each collapsed group, plus followers that fell back to their own
	// search after a leader failure.
	Misses int64
	// Collapses counts lookups that waited on another call's in-flight
	// search and shared its result (singleflight followers). A follower is
	// counted here while it waits and reclassified as a miss if the leader
	// fails and it falls back to its own search.
	Collapses int64
	// Evictions counts entries dropped to keep shards under budget.
	Evictions int64
	// Bypasses counts uncacheable calls (custom Labeler, oversized result).
	Bypasses int64
	// Entries and Bytes are the current stored entry count and their
	// estimated memory; MaxBytes is the configured budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// HitRate returns the fraction of cacheable lookups served without running
// a search (hits plus collapsed waiters); zero before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Collapses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Collapses) / float64(total)
}

// CacheInfo describes how one Cache.SearchInfo call was served.
type CacheInfo struct {
	// Hit reports that the call was answered from a stored entry.
	Hit bool
	// Collapsed reports that the call waited on a concurrent identical
	// search instead of running its own.
	Collapsed bool
	// Generation is the engine generation the returned results belong to —
	// the generation current when the call entered the cache.
	Generation uint64
	// Vector is the per-shard generation vector of that generation for a
	// sharded engine (nil otherwise): the exact cross-shard cut the results
	// were computed on — or stored under, for a hit.
	Vector []uint64
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      list.List // front = most recently used
	flights  map[string]*cacheFlight
	bytes    int64
	maxBytes int64
}

// cacheEntry is one stored result set; it lives in the shard's LRU list.
type cacheEntry struct {
	key     string
	results []Result
	bytes   int64
}

// cacheFlight is one in-progress computation other callers can wait on.
type cacheFlight struct {
	done    chan struct{}
	results []Result
	err     error
}

// NewCache wraps the engine with a result cache. The engine stays fully
// usable directly — mutations go through Engine.Apply as always, and the
// new generation they publish makes the cache's older entries unreachable.
func NewCache(e *Engine, opts CacheOptions) *Cache {
	if e == nil {
		panic("kws: NewCache requires an engine")
	}
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = defaultCacheShards
	}
	perShard := maxBytes / int64(shards)
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		engine: e,
		shards: make([]*cacheShard, shards),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			entries:  make(map[string]*list.Element),
			flights:  make(map[string]*cacheFlight),
			maxBytes: perShard,
		}
	}
	return c
}

// Engine returns the engine the cache serves.
func (c *Cache) Engine() *Engine { return c.engine }

// Search answers the query like Engine.Search, serving repeated queries of
// the same generation from the cache. See SearchInfo for the serving
// details of a call.
func (c *Cache) Search(ctx context.Context, q Query) ([]Result, error) {
	results, _, err := c.SearchInfo(ctx, q)
	return results, err
}

// SearchUncached answers the query around the cache — nothing is looked up
// or stored, only the bypass counter moves — while still pinning one
// generation for the whole call and reporting it. It is the correct way to
// serve an explicitly uncached request next to cached ones.
func (c *Cache) SearchUncached(ctx context.Context, q Query) ([]Result, CacheInfo, error) {
	c.bypasses.Add(1)
	snap := c.engine.current()
	results, err := c.engine.searchOn(ctx, snap, q)
	return results, cacheInfoFor(snap), err
}

// cacheInfoFor stamps a call's CacheInfo with the pinned snapshot's
// generation and, for sharded engines, its generation vector.
func cacheInfoFor(snap *snapshot) CacheInfo {
	info := CacheInfo{Generation: snap.gen}
	if snap.shards != nil {
		info.Vector = snap.shards.Vector()
	}
	return info
}

// SearchInfo is Search plus a report of how the call was served (hit,
// collapsed onto a concurrent search, and which generation answered).
func (c *Cache) SearchInfo(ctx context.Context, q Query) ([]Result, CacheInfo, error) {
	if q.Labeler != nil {
		// A custom labeler changes the result bytes and cannot be keyed.
		return c.SearchUncached(ctx, q)
	}
	rq, err := c.engine.resolve(q)
	if err != nil {
		return nil, CacheInfo{}, err
	}
	// Pin the generation once: the key carries it, and a miss computes on
	// exactly that snapshot, so a stored entry is the pinned generation's
	// output even when Apply publishes newer generations mid-search.
	snap := c.engine.current()
	info := cacheInfoFor(snap)
	key := snapCacheKey(snap, rq)
	shard := c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]

	shard.mu.Lock()
	if el, ok := shard.entries[key]; ok {
		shard.lru.MoveToFront(el)
		results := copyResults(el.Value.(*cacheEntry).results)
		shard.mu.Unlock()
		c.hits.Add(1)
		info.Hit = true
		return results, info, nil
	}
	if f, ok := shard.flights[key]; ok {
		shard.mu.Unlock()
		c.collapses.Add(1)
		info.Collapsed = true
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, info, ctx.Err()
		}
		if f.err != nil {
			// The leader failed (possibly on its own cancelled context);
			// fall back to an independent search on the same snapshot.
			// The call does real work after all, so reclassify it from
			// collapsed to miss — otherwise HitRate would count exactly
			// the slow-path calls an operator tunes the cache by.
			info.Collapsed = false
			c.collapses.Add(-1)
			c.misses.Add(1)
			results, err := c.engine.searchOn(ctx, snap, rq)
			return results, info, err
		}
		return copyResults(f.results), info, nil
	}
	f := &cacheFlight{done: make(chan struct{})}
	shard.flights[key] = f
	shard.mu.Unlock()

	c.misses.Add(1)
	f.results, f.err = c.engine.searchOn(ctx, snap, rq)

	shard.mu.Lock()
	delete(shard.flights, key)
	if f.err == nil {
		c.store(shard, key, f.results)
	}
	shard.mu.Unlock()
	close(f.done)

	if f.err != nil {
		return nil, info, f.err
	}
	return copyResults(f.results), info, nil
}

// store inserts a computed entry and evicts from the cold end until the
// shard fits its budget again. Results too large for the whole shard are
// not cached at all. Called with the shard lock held.
func (c *Cache) store(shard *cacheShard, key string, results []Result) {
	cost := int64(len(key)) + resultsBytes(results)
	if cost > shard.maxBytes {
		c.bypasses.Add(1)
		return
	}
	if el, ok := shard.entries[key]; ok {
		// A bypassing call or a racing leader of a neighbouring key class
		// cannot insert duplicates (flights serialize per key), but be
		// defensive: refresh the existing entry instead of double-counting.
		shard.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, results: results, bytes: cost}
	shard.entries[key] = shard.lru.PushFront(e)
	shard.bytes += cost
	for shard.bytes > shard.maxBytes {
		back := shard.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		shard.lru.Remove(back)
		delete(shard.entries, victim.key)
		shard.bytes -= victim.bytes
		c.evictions.Add(1)
	}
}

// Stats returns a snapshot of the cache counters and current size.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapses: c.collapses.Load(),
		Evictions: c.evictions.Load(),
		Bypasses:  c.bypasses.Load(),
	}
	for _, shard := range c.shards {
		shard.mu.Lock()
		st.Entries += len(shard.entries)
		st.Bytes += shard.bytes
		st.MaxBytes += shard.maxBytes
		shard.mu.Unlock()
	}
	return st
}

// cacheKey encodes the generation and every result-affecting field of a
// resolved query. Keywords keep their literal spelling and order — matched
// keyword lists echo the query strings verbatim, so "XML" and "xml" are
// different result sets even though they match the same tuples.
func cacheKey(gen uint64, q Query) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString("g")
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteString("|e")
	b.WriteString(string(q.Engine))
	b.WriteString("|r")
	b.WriteString(string(q.Ranking))
	b.WriteString("|j")
	b.WriteString(strconv.Itoa(q.MaxJoins))
	b.WriteString("|k")
	b.WriteString(strconv.Itoa(q.TopK))
	b.WriteString("|i")
	b.WriteString(strconv.Itoa(int(q.InstanceChecks)))
	b.WriteString("|l")
	b.WriteString(strconv.FormatFloat(q.LoosenessLambda, 'g', -1, 64))
	for _, kw := range q.Keywords {
		// Length-prefix each keyword so no join separator can be spoofed.
		fmt.Fprintf(&b, "|%d:%s", len(kw), kw)
	}
	return b.String()
}

// snapCacheKey is cacheKey extended with the snapshot's shard generation
// vector: sharded entries are keyed by the exact cross-shard cut, so a hit
// certifies every shard's generation, not just the global counter. For an
// unsharded engine it is cacheKey exactly.
func snapCacheKey(snap *snapshot, q Query) string {
	key := cacheKey(snap.gen, q)
	if snap.shards == nil {
		return key
	}
	var b strings.Builder
	b.Grow(len(key) + 4 + 8*len(snap.shards.Parts))
	b.WriteString(key)
	b.WriteString("|v")
	for i, g := range snap.shards.Vector() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(g, 10))
	}
	return b.String()
}

// copyResults deep-copies a result set so cached storage is never aliased
// by callers.
func copyResults(results []Result) []Result {
	out := make([]Result, len(results))
	for i, r := range results {
		out[i] = r
		out[i].Tuples = append([]string(nil), r.Tuples...)
		if r.MatchedKeywords != nil {
			m := make(map[string][]string, len(r.MatchedKeywords))
			for k, v := range r.MatchedKeywords {
				m[k] = append([]string(nil), v...)
			}
			out[i].MatchedKeywords = m
		}
	}
	return out
}

// resultsBytes estimates the memory held by a result set; it drives the
// per-entry cost accounting of the LRU budget.
func resultsBytes(results []Result) int64 {
	const perResult = 160 // struct, slice and map headers
	total := int64(0)
	for _, r := range results {
		total += perResult
		total += int64(len(r.Connection) + len(r.ConnectionWithCardinalities) + len(r.Class))
		for _, t := range r.Tuples {
			total += int64(16 + len(t))
		}
		for k, v := range r.MatchedKeywords {
			total += int64(48 + len(k))
			for _, kw := range v {
				total += int64(16 + len(kw))
			}
		}
	}
	return total
}
