package kws

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestLoadCSVIntoTable(t *testing.T) {
	db := NewDatabase("csv")
	if err := CompanySchema(db); err != nil {
		t.Fatal(err)
	}
	n, err := db.LoadCSV("DEPARTMENT", strings.NewReader("ID,D_NAME,D_DESCRIPTION\nd1,cs,databases and XML\nd2,inf,retrieval\n"))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if n != 2 || db.TupleCount() != 2 {
		t.Errorf("loaded %d rows, tuple count %d", n, db.TupleCount())
	}
	if _, err := db.LoadCSV("NOPE", strings.NewReader("A\n1\n")); err == nil {
		t.Error("loading into an unknown table should fail")
	}
}

func TestLoadCSVDirRoundTripWithDbgenFormat(t *testing.T) {
	// Write CSV files in the format cmd/dbgen produces (via the paper
	// database) and load them back through the public API.
	dir := t.TempDir()
	source := PaperExample()
	for _, name := range source.Tables() {
		tab, _ := source.internalDB().Table(name)
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := relation.WriteCSV(f, tab); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	db := NewDatabase("company")
	if err := CompanySchema(db); err != nil {
		t.Fatal(err)
	}
	n, err := db.LoadCSVDir(dir)
	if err != nil {
		t.Fatalf("LoadCSVDir: %v", err)
	}
	if n != 16 || db.TupleCount() != 16 {
		t.Errorf("loaded %d rows, tuple count %d, want 16", n, db.TupleCount())
	}
	if err := db.Validate(); err != nil {
		t.Errorf("loaded database invalid: %v", err)
	}
	// The loaded database answers the paper's query like the original.
	engine, err := Open(db, Config{Ranking: RankCloseFirst, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Errorf("results over the CSV-loaded database = %d, want 7", len(results))
	}
}

func TestLoadCSVDirErrors(t *testing.T) {
	db := NewDatabase("x")
	if _, err := db.LoadCSVDir("/nonexistent-directory-for-kws-test"); err == nil {
		t.Error("missing directory should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "UNKNOWN.csv"), []byte("A\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSVDir(dir); err == nil {
		t.Error("csv file without a matching table should fail")
	}
}
