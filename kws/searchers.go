package kws

import (
	"context"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/search/banks"
	"repro/internal/search/mtjnt"
	"repro/internal/search/paths"
)

// banksRawCap bounds the number of answer trees the BANKS baseline produces
// per query before ranking, matching the cap the facade has always used.
const banksRawCap = 100

// annotate turns a plain connection into a fully analysed answer: the
// close/loose analysis (with instance corroboration when enabled), the
// per-tuple keyword matches and the TF-IDF content score.
func (c Components) annotate(ctx context.Context, conn core.Connection, matched map[relation.TupleID][]string, keywords []string, instanceChecks bool) (Answer, error) {
	var (
		an  core.Analysis
		err error
	)
	if instanceChecks {
		an, err = c.Analyzer.AnalyzeWithInstanceContext(ctx, conn, c.Graph)
	} else {
		an, err = c.Analyzer.Analyze(conn)
	}
	if err != nil {
		return Answer{}, err
	}
	copied := make(map[relation.TupleID][]string, len(matched))
	content := 0.0
	for _, t := range conn.Tuples {
		if kws := matched[t]; len(kws) > 0 {
			copied[t] = append([]string(nil), kws...)
		}
		content += c.Index.ContentScore(t, keywords)
	}
	return Answer{Connection: conn, Analysis: an, Matches: copied, ContentScore: content}, nil
}

// pathsSearcher adapts the connection-enumeration engine, which streams
// natively: answers are built and yielded while the enumeration runs.
type pathsSearcher struct {
	engine *paths.Engine
}

func newPathsSearcher(c Components) (Searcher, error) {
	e, err := paths.NewWithComponents(c.DB, c.Graph, c.Index, c.Analyzer, paths.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return pathsSearcher{engine: e}, nil
}

// Stream implements Searcher by delegating to the paths engine's native
// streaming enumeration.
func (s pathsSearcher) Stream(ctx context.Context, q Query, yield func(Answer) bool) error {
	opts := paths.Options{
		MaxEdges:              q.MaxJoins,
		RequireAllKeywords:    true,
		InstanceCorroboration: q.InstanceChecks == ToggleOn,
		Parallelism:           q.Parallelism,
	}
	return s.engine.Stream(ctx, q.Keywords, opts, yield)
}

// mtjntSearcher adapts the DISCOVER-style baseline: networks stream out of
// the minimal-total filter and are annotated one by one.
type mtjntSearcher struct {
	comp   Components
	engine *mtjnt.Engine
}

func newMTJNTSearcher(c Components) (Searcher, error) {
	e, err := mtjnt.NewWithComponents(c.DB, c.Graph, c.Index, mtjnt.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return mtjntSearcher{comp: c, engine: e}, nil
}

// Stream implements Searcher: networks stream out of the minimal-total
// filter and are annotated one by one.
func (s mtjntSearcher) Stream(ctx context.Context, q Query, yield func(Answer) bool) error {
	var annErr error
	err := s.engine.Stream(ctx, q.Keywords, mtjnt.Options{MaxEdges: q.MaxJoins}, func(n mtjnt.Network) bool {
		var a Answer
		a, annErr = s.comp.annotate(ctx, n.Connection, n.Matches, q.Keywords, q.InstanceChecks == ToggleOn)
		if annErr != nil {
			return false
		}
		return yield(a)
	})
	if annErr != nil {
		return annErr
	}
	return err
}

// banksSearcher adapts the backward-expanding baseline. BANKS must finish
// its keyword expansions before the first tree exists, so answers stream
// from the annotation phase onwards; only path-shaped trees become answers.
type banksSearcher struct {
	comp   Components
	engine *banks.Engine
}

func newBANKSSearcher(c Components) (Searcher, error) {
	e, err := banks.NewWithComponents(c.DB, c.Graph, c.Index, banks.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return banksSearcher{comp: c, engine: e}, nil
}

// Stream implements Searcher: trees are collected by the backward
// expansion, filtered to path shapes and annotated as they emerge.
func (s banksSearcher) Stream(ctx context.Context, q Query, yield func(Answer) bool) error {
	opts := banks.Options{MaxDepth: q.MaxJoins, MaxResults: banksRawCap, Parallelism: q.Parallelism}
	var annErr error
	err := s.engine.Stream(ctx, q.Keywords, opts, func(t banks.Tree) bool {
		conn, ok := t.AsConnection()
		if !ok {
			if len(t.Nodes) != 1 {
				return true
			}
			c, err := core.NewConnection(t.Nodes[0], nil)
			if err != nil {
				return true
			}
			conn = c
		}
		var a Answer
		a, annErr = s.comp.annotate(ctx, conn, t.Matches, q.Keywords, q.InstanceChecks == ToggleOn)
		if annErr != nil {
			return false
		}
		return yield(a)
	})
	if annErr != nil {
		return annErr
	}
	return err
}
