package kws

import (
	"repro/internal/paperdb"
	"repro/internal/relation"
)

// EngineKind selects a search strategy. The built-in kinds are EnginePaths,
// EngineMTJNT and EngineBANKS; additional kinds can be added with
// RegisterEngine. The untyped string constants of earlier releases convert
// implicitly, so existing Config literals keep compiling.
type EngineKind string

// Built-in search engine kinds.
const (
	// EnginePaths enumerates every connection between keyword tuples up to
	// the join budget (the paper's proposal).
	EnginePaths EngineKind = "paths"
	// EngineMTJNT returns only minimal total joining networks of tuples
	// (the DISCOVER baseline).
	EngineMTJNT EngineKind = "mtjnt"
	// EngineBANKS runs backward expanding search (the BANKS baseline);
	// only its path-shaped answers are returned.
	EngineBANKS EngineKind = "banks"
)

// RankStrategy selects a ranking strategy. The built-in strategies are
// listed below; additional strategies can be added with RegisterRanker.
type RankStrategy string

// Built-in ranking strategies.
const (
	// RankRDBLength ranks by the number of joins in the relational
	// database (the conventional length-based ranking).
	RankRDBLength RankStrategy = "rdb-length"
	// RankERLength ranks by conceptual length: middle relations
	// implementing N:M relationships do not count.
	RankERLength RankStrategy = "er-length"
	// RankCloseFirst ranks close associations first, then corroborated
	// loose ones, then the rest, breaking ties by conceptual length.
	RankCloseFirst RankStrategy = "close-first"
	// RankLoosenessPenalty ranks by conceptual length plus a penalty per
	// transitive N:M sub-path.
	RankLoosenessPenalty RankStrategy = "looseness-penalty"
	// RankHubPenalty additionally charges for the tuples associated by
	// every general-entity hub at the instance level.
	RankHubPenalty RankStrategy = "hub-penalty"
	// RankCombined mixes conceptual length with the TF-IDF content score.
	RankCombined RankStrategy = "combined"
)

// Toggle is a three-valued option: inherit the engine default, force on, or
// force off.
type Toggle int

const (
	// ToggleDefault inherits the engine's configured default.
	ToggleDefault Toggle = iota
	// ToggleOn forces the option on for this query.
	ToggleOn
	// ToggleOff forces the option off for this query.
	ToggleOff
)

// TupleID identifies a tuple as its relation name plus encoded primary key;
// it renders as "RELATION[key]".
type TupleID = relation.TupleID

// Labeler maps a tuple identifier to the label used when rendering results.
type Labeler func(TupleID) string

// PaperLabeler returns the labeler that renders the paper's running example
// with the labels of its Tables 2-3 (d1, p1, e1, w_f1, ...). Pass it via
// WithLabeler or Query.Labeler when searching PaperExample.
func PaperLabeler() Labeler { return paperdb.DisplayLabel }

// Query is one keyword search call. The zero value of every option inherits
// the engine's configured default, so a Query usually only carries keywords:
//
//	engine.Search(ctx, kws.Query{Keywords: []string{"Smith", "XML"}})
//
// One Engine serves many concurrent queries with different options.
type Query struct {
	// Keywords are the query keywords (AND semantics: every keyword must be
	// matched by some tuple of an answer).
	Keywords []string
	// Engine selects the search strategy for this query ("" = the engine
	// default).
	Engine EngineKind
	// Ranking selects the ranking strategy for this query ("" = the engine
	// default). Streamed results are not ranked; see Engine.Stream.
	Ranking RankStrategy
	// MaxJoins is the connection budget in joins (0 = the engine default).
	MaxJoins int
	// TopK caps the number of results for this query: 0 inherits the engine
	// default, negative means all results.
	TopK int
	// InstanceChecks toggles the instance-level corroboration analysis, the
	// most expensive part of result annotation.
	InstanceChecks Toggle
	// LoosenessLambda is the penalty per transitive N:M sub-path used by
	// RankLoosenessPenalty (0 = the engine default).
	LoosenessLambda float64
	// Labeler renders tuple identifiers in this query's results (nil = the
	// engine's labeler, which defaults to TupleID.String).
	Labeler Labeler
	// Parallelism bounds the worker goroutines of this query's internal
	// fan-out — keyword expansions in BANKS, per-source enumerations and
	// the ordered annotation pipeline in paths (0 = the engine default,
	// which itself defaults to GOMAXPROCS; 1 = fully sequential). Inside
	// SearchBatch the concurrency budget is spent across queries instead,
	// so 0 means sequential internals there (see Engine.SearchBatch).
	// Results are deterministic for any value.
	Parallelism int
}
