package kws

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedReadersObserveConsistentCuts is the sharded analogue of
// TestReadersNeverObserveTornSnapshot: Search, Stream and SearchBatch readers
// race a writer on a 4-shard engine, and every observed result set must be
// exactly the output of SOME published generation — never a mix of two
// shards' histories — while every observed generation vector must be exactly
// SOME committed cut. Expected outputs come from an UNSHARDED reference
// (sharding must not change a byte) and expected vectors from a sharded
// reference applying the identical script (the partitioner is deterministic,
// so the vector sequence is too). Run with -race -cpu=1,4 in CI.
func TestShardedReadersObserveConsistentCuts(t *testing.T) {
	const shards = 4
	query := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}
	ctx := context.Background()
	batches := raceBatches()

	// Expected renders per generation, from an unsharded reference.
	ref, err := New(PaperExample(), WithLabeler(PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	expected := make([][]string, 0, len(batches)+1)
	record := func() {
		res, err := ref.Search(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		expected = append(expected, renders(res))
	}
	record()
	for _, m := range batches {
		if _, err := ref.Apply(ctx, m); err != nil {
			t.Fatal(err)
		}
		record()
	}

	// Expected generation vectors per generation, from a sharded reference.
	vecRef, err := New(PaperExample(), WithLabeler(PaperLabeler()), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	expectedVectors := [][]uint64{vecRef.GenerationVector()}
	for _, m := range batches {
		if _, err := vecRef.Apply(ctx, m); err != nil {
			t.Fatal(err)
		}
		expectedVectors = append(expectedVectors, vecRef.GenerationVector())
	}

	live, err := New(PaperExample(), WithLabeler(PaperLabeler()), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	matchesSomeGeneration := func(got []string) bool {
		for _, want := range expected {
			if reflect.DeepEqual(got, want) {
				return true
			}
		}
		return false
	}
	matchesSomeVector := func(got []uint64) bool {
		for _, want := range expectedVectors {
			if reflect.DeepEqual(got, want) {
				return true
			}
		}
		return false
	}

	var done atomic.Bool
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if v := live.GenerationVector(); !matchesSomeVector(v) {
					report(fmt.Errorf("torn generation vector: %v", v))
					return
				}
				res, err := live.Search(ctx, query)
				if err != nil {
					report(err)
					return
				}
				if got := renders(res); !matchesSomeGeneration(got) {
					report(fmt.Errorf("torn sharded Search result: %v", got))
					return
				}
			}
		}()
	}
	// SearchBatch pins one cut: identical queries in one batch must agree.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			out := live.SearchBatch(ctx, []Query{query, query})
			if out[0].Err != nil || out[1].Err != nil {
				report(fmt.Errorf("batch errors: %v / %v", out[0].Err, out[1].Err))
				return
			}
			a, b := renders(out[0].Results), renders(out[1].Results)
			if !reflect.DeepEqual(a, b) {
				report(fmt.Errorf("batch mixed cuts: %v vs %v", a, b))
				return
			}
			if !matchesSomeGeneration(a) {
				report(fmt.Errorf("torn batch result: %v", a))
				return
			}
		}
	}()

	for _, m := range batches {
		time.Sleep(2 * time.Millisecond)
		if _, err := live.Apply(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if live.Generation() != uint64(len(batches)) {
		t.Fatalf("final generation = %d, want %d", live.Generation(), len(batches))
	}
	if got := live.GenerationVector(); !reflect.DeepEqual(got, expectedVectors[len(expectedVectors)-1]) {
		t.Fatalf("final vector %v != reference %v", got, expectedVectors[len(expectedVectors)-1])
	}
	final, err := live.Search(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if got := renders(final); !reflect.DeepEqual(got, expected[len(expected)-1]) {
		t.Fatalf("final output %v != reference %v", got, expected[len(expected)-1])
	}
}

// TestShardedConcurrentWritersSerialize races writers on a sharded engine:
// commutative inserts from 8 goroutines must each publish exactly one
// generation (batches on disjoint shards prepare concurrently; publication
// is serialized), and the final state must match the unsharded engine fed
// the same inserts.
func TestShardedConcurrentWritersSerialize(t *testing.T) {
	const writers = 8
	sharded, err := New(PaperExample(), WithLabeler(PaperLabeler()), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := sharded.Apply(ctx, Mutation{Ops: []Op{
				Insert("DEPENDENT", map[string]any{
					"ID": fmt.Sprintf("tc%d", w), "ESSN": "e3", "DEPENDENT_NAME": "Racer"}),
			}})
			if err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if sharded.Generation() != writers {
		t.Fatalf("generation = %d, want %d", sharded.Generation(), writers)
	}
	// The vector's entries sum to the number of single-shard batches.
	sum := uint64(0)
	for _, g := range sharded.GenerationVector() {
		sum += g
	}
	if sum != writers {
		t.Fatalf("vector %v sums to %d, want %d", sharded.GenerationVector(), sum, writers)
	}

	// Byte-identity with the unsharded engine over the same final state.
	reference, err := New(PaperExample(), WithLabeler(PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		if _, err := reference.Apply(ctx, Mutation{Ops: []Op{
			Insert("DEPENDENT", map[string]any{
				"ID": fmt.Sprintf("tc%d", w), "ESSN": "e3", "DEPENDENT_NAME": "Racer"}),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Keywords: []string{"Racer"}, MaxJoins: 3}
	want, err := reference.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded output diverged:\nsharded:   %v\nreference: %v", renders(got), renders(want))
	}
}
