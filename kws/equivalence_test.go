package kws

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagraph"
	"repro/internal/paperdb"
	"repro/internal/relation"
	"repro/internal/workload"
)

// The rebuild-equivalence property: after ANY sequence of mutations, the
// incrementally maintained engine must be indistinguishable from an engine
// built from scratch over the same data — graph adjacency, index postings,
// document frequencies and full search output all byte-identical. These
// tests drive seeded random mutation batches and check the property after
// every batch.

func TestRebuildEquivalencePaperDB(t *testing.T) {
	batches := 12
	if testing.Short() {
		batches = 4
	}
	runRebuildEquivalence(t, paperdb.MustLoad, 1, batches)
}

func TestRebuildEquivalenceWorkload(t *testing.T) {
	batches := 8
	if testing.Short() {
		batches = 3
	}
	gen := func() *relation.Database {
		db, err := workload.Generate(workload.ScaledConfig(2, 99))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	runRebuildEquivalence(t, gen, 2, batches)
}

// equivalenceQueries cover single- and multi-keyword, single- and
// multi-token, matching and non-matching cases.
var equivalenceQueries = [][]string{
	{"Smith", "XML"},
	{"Alice", "XML"},
	{"databases"},
	{"information retrieval"},
	{"history", "programming"},
	{"nosuchkeyword"},
}

func runRebuildEquivalence(t *testing.T, freshDB func() *relation.Database, seed int64, batches int) {
	live, err := New(&Database{db: freshDB()})
	if err != nil {
		t.Fatal(err)
	}
	mirror := freshDB()
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	ctx := context.Background()
	for b := 0; b < batches; b++ {
		n := 1 + rng.Intn(4)
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			op, ok := randomOp(t, rng, mirror, &counter)
			if !ok {
				continue
			}
			replayOp(t, mirror, op)
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			continue
		}
		gen := live.Generation()
		if _, err := live.Apply(ctx, Mutation{Ops: ops}); err != nil {
			t.Fatalf("batch %d: Apply(%v): %v", b, ops, err)
		}
		if live.Generation() != gen+1 {
			t.Fatalf("batch %d: generation %d -> %d", b, gen, live.Generation())
		}
		requireEngineEquivalent(t, b, live, mirror)
	}
}

// requireEngineEquivalent checks the incremental engine against a fresh
// kws.New over the mirror database at every level: relational state, graph
// adjacency, index postings and frequencies, and full search renders.
func requireEngineEquivalent(t *testing.T, batch int, live *Engine, mirror *relation.Database) {
	t.Helper()
	fresh, err := New(&Database{db: mirror})
	if err != nil {
		t.Fatalf("batch %d: fresh build: %v", batch, err)
	}
	lc := live.current().comp
	fc := fresh.current().comp

	// Relational state: same tuples, same order, same values per table.
	for _, name := range mirror.TableNames() {
		lt, _ := lc.DB.Table(name)
		ft, _ := fc.DB.Table(name)
		if lt.Len() != ft.Len() {
			t.Fatalf("batch %d: table %s has %d tuples, mirror has %d", batch, name, lt.Len(), ft.Len())
		}
		for i, tup := range lt.Tuples() {
			want := ft.Tuples()[i]
			if tup.ID() != want.ID() || tup.String() != want.String() {
				t.Fatalf("batch %d: table %s tuple %d: %v != %v", batch, name, i, tup, want)
			}
		}
	}

	// Graph adjacency, both node sets and sorted edge lists.
	if lc.Graph.EdgeCount() != fc.Graph.EdgeCount() || lc.Graph.NodeCount() != fc.Graph.NodeCount() {
		t.Fatalf("batch %d: graph size %d nodes / %d edges, fresh %d / %d", batch,
			lc.Graph.NodeCount(), lc.Graph.EdgeCount(), fc.Graph.NodeCount(), fc.Graph.EdgeCount())
	}
	if got, want := graphDump(lc.Graph), graphDump(fc.Graph); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch %d: graph adjacency diverged from fresh build", batch)
	}

	// Index: postings, doc counts, per-term frequencies, doc lengths.
	if lc.Index.DocCount() != fc.Index.DocCount() || lc.Index.TermCount() != fc.Index.TermCount() {
		t.Fatalf("batch %d: index size %d docs / %d terms, fresh %d / %d", batch,
			lc.Index.DocCount(), lc.Index.TermCount(), fc.Index.DocCount(), fc.Index.TermCount())
	}
	if got, want := lc.Index.Dump(), fc.Index.Dump(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch %d: index postings diverged from fresh build", batch)
	}
	for _, term := range fc.Index.Vocabulary() {
		if lc.Index.DocFrequency(term) != fc.Index.DocFrequency(term) {
			t.Fatalf("batch %d: DocFrequency(%q) = %d, fresh %d", batch, term,
				lc.Index.DocFrequency(term), fc.Index.DocFrequency(term))
		}
	}

	// Full search output, every query, every engine default: results must be
	// DeepEqual including ranks, scores, matches and rendered connections.
	ctx := context.Background()
	for _, kws := range equivalenceQueries {
		q := Query{Keywords: kws, MaxJoins: 4}
		got, gotErr := live.Search(ctx, q)
		want, wantErr := fresh.Search(ctx, q)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("batch %d: query %v: err %v vs fresh %v", batch, kws, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: query %v diverged:\nincremental: %v\nfresh:       %v",
				batch, kws, renders(got), renders(want))
		}
	}
}

func graphDump(g *datagraph.Graph) map[relation.TupleID][]datagraph.Edge {
	out := make(map[relation.TupleID][]datagraph.Edge, g.NodeCount())
	for _, id := range g.Nodes() {
		out[id] = g.Neighbors(id)
	}
	return out
}

// --- random op generation ------------------------------------------------

var equivWords = []string{
	"XML", "databases", "Smith", "retrieval", "information", "history",
	"programming", "graph", "keyword", "search", "semantics", "optimization",
}

func pickWord(rng *rand.Rand) string { return equivWords[rng.Intn(len(equivWords))] }

func sentence(rng *rand.Rand) string {
	n := 3 + rng.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += pickWord(rng)
	}
	return out
}

// pickTupleKey returns the encoded key of a random tuple of the table, or
// false when the table is empty.
func pickTupleKey(rng *rand.Rand, db *relation.Database, table string) (string, bool) {
	t, ok := db.Table(table)
	if !ok || t.Len() == 0 {
		return "", false
	}
	return t.Tuples()[rng.Intn(t.Len())].ID().Key, true
}

// fkValue picks an existing key of the referenced table most of the time and
// a dangling key otherwise — dangling references are legal and must behave
// identically in both engines.
func fkValue(rng *rand.Rand, db *relation.Database, table string, counter *int) string {
	if key, ok := pickTupleKey(rng, db, table); ok && rng.Intn(10) < 7 {
		return key
	}
	*counter++
	return fmt.Sprintf("dangling-%d", *counter)
}

// randomOp produces one random insert, delete or update that is valid
// against the current mirror state; ok is false when no op could be built
// (e.g. deleting from an empty database).
func randomOp(t *testing.T, rng *rand.Rand, mirror *relation.Database, counter *int) (Op, bool) {
	t.Helper()
	tables := mirror.TableNames()
	switch k := rng.Intn(10); {
	case k < 4: // insert
		*counter++
		switch table := tables[rng.Intn(len(tables))]; table {
		case "DEPARTMENT":
			return Insert(table, map[string]any{
				"ID": fmt.Sprintf("zd%d", *counter), "D_NAME": pickWord(rng),
				"D_DESCRIPTION": sentence(rng)}), true
		case "PROJECT":
			return Insert(table, map[string]any{
				"ID": fmt.Sprintf("zp%d", *counter), "D_ID": fkValue(rng, mirror, "DEPARTMENT", counter),
				"P_NAME": pickWord(rng), "P_DESCRIPTION": sentence(rng)}), true
		case "EMPLOYEE":
			return Insert(table, map[string]any{
				"SSN": fmt.Sprintf("ze%d", *counter), "L_NAME": pickWord(rng),
				"S_NAME": pickWord(rng), "D_ID": fkValue(rng, mirror, "DEPARTMENT", counter)}), true
		case "WORKS_ON":
			// A fresh ESSN guarantees a unique composite key.
			return Insert(table, map[string]any{
				"ESSN": fmt.Sprintf("zw%d", *counter), "P_ID": fkValue(rng, mirror, "PROJECT", counter),
				"HOURS": rng.Intn(80)}), true
		default: // DEPENDENT
			return Insert(table, map[string]any{
				"ID": fmt.Sprintf("zt%d", *counter), "ESSN": fkValue(rng, mirror, "EMPLOYEE", counter),
				"DEPENDENT_NAME": pickWord(rng)}), true
		}
	case k < 7: // delete a random existing tuple
		table := tables[rng.Intn(len(tables))]
		key, ok := keySelector(rng, mirror, table)
		if !ok {
			return Op{}, false
		}
		return Delete(table, key), true
	default: // update a random existing tuple
		table := tables[rng.Intn(len(tables))]
		key, ok := keySelector(rng, mirror, table)
		if !ok {
			return Op{}, false
		}
		var set map[string]any
		switch table {
		case "DEPARTMENT":
			set = map[string]any{"D_DESCRIPTION": sentence(rng)}
		case "PROJECT":
			set = map[string]any{"P_DESCRIPTION": sentence(rng), "D_ID": fkValue(rng, mirror, "DEPARTMENT", counter)}
		case "EMPLOYEE":
			set = map[string]any{"L_NAME": pickWord(rng)}
			if rng.Intn(2) == 0 {
				set["D_ID"] = fkValue(rng, mirror, "DEPARTMENT", counter)
			}
		case "WORKS_ON":
			set = map[string]any{"HOURS": rng.Intn(80)}
		default:
			set = map[string]any{"DEPENDENT_NAME": pickWord(rng), "ESSN": fkValue(rng, mirror, "EMPLOYEE", counter)}
		}
		return Update(table, key, set), true
	}
}

// keySelector builds the public primary-key selector map of a random tuple.
func keySelector(rng *rand.Rand, db *relation.Database, table string) (map[string]any, bool) {
	t, ok := db.Table(table)
	if !ok || t.Len() == 0 {
		return nil, false
	}
	tup := t.Tuples()[rng.Intn(t.Len())]
	key := make(map[string]any, len(t.Schema().PrimaryKey))
	for _, col := range t.Schema().PrimaryKey {
		key[col] = tup.Value(col).AsString()
	}
	return key, true
}

// replayOp applies an op to the mirror database through the plain relation
// API — an implementation independent of the engine's stager, so a staging
// bug cannot cancel itself out in the comparison.
func replayOp(t *testing.T, db *relation.Database, op Op) {
	t.Helper()
	tab, ok := db.Table(op.Table)
	if !ok {
		t.Fatalf("replay: unknown table %s", op.Table)
	}
	switch op.Kind {
	case OpInsert:
		if _, err := tab.Insert(replayRow(tab, op.Row)); err != nil {
			t.Fatalf("replay insert %v: %v", op, err)
		}
	case OpDelete:
		if _, ok := tab.Delete(replayKey(tab, op.Key)); !ok {
			t.Fatalf("replay delete %v: tuple missing", op)
		}
	case OpUpdate:
		key := replayKey(tab, op.Key)
		old, ok := tab.ByPrimaryKey(key)
		if !ok {
			t.Fatalf("replay update %v: tuple missing", op)
		}
		merged := make(map[string]relation.Value)
		for _, col := range tab.Schema().Columns {
			merged[col.Name] = old.Value(col.Name)
		}
		for col, v := range replayRow(tab, op.Row) {
			merged[col] = v
		}
		tab.Delete(key)
		if _, err := tab.Insert(merged); err != nil {
			t.Fatalf("replay update %v: %v", op, err)
		}
	default:
		t.Fatalf("replay: unknown kind %v", op.Kind)
	}
}

func replayRow(tab *relation.Table, row map[string]any) map[string]relation.Value {
	out := make(map[string]relation.Value, len(row))
	for col, v := range row {
		def, _ := tab.Schema().Column(col)
		switch x := v.(type) {
		case nil:
			out[col] = relation.Null()
		case string:
			if def.Type == relation.TypeText {
				out[col] = relation.Text(x)
			} else {
				out[col] = relation.String(x)
			}
		case int:
			out[col] = relation.Int(int64(x))
		default:
			panic(fmt.Sprintf("replayRow: unsupported %T", v))
		}
	}
	return out
}

func replayKey(tab *relation.Table, key map[string]any) string {
	vals := make([]relation.Value, len(tab.Schema().PrimaryKey))
	for i, col := range tab.Schema().PrimaryKey {
		vals[i] = relation.String(key[col].(string))
	}
	return relation.EncodeKey(vals)
}
