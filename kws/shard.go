package kws

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/search/paths"
	"repro/internal/shard"
)

// Sharding. An engine constructed WithShards(n) partitions its tuples across
// n goroutine-confined shard engines, each maintaining the data graph and
// inverted index of exactly its partition. Reads scatter-gather: keyword
// matching fans out to every shard's index, and the gathered match set feeds
// the same enumeration, annotation and rank-preserving merge the unsharded
// engine runs — the shard-determinism suite holds the output byte-identical
// at every shard count. Writes stage once against the composed snapshot,
// split the net delta by owner shard, and prepare the touched shards in
// parallel; batches touching disjoint shards prepare concurrently under
// per-shard leases, and a single atomic pointer store publishes the new
// cross-shard cut. Readers pin the cut at entry, so one call never mixes two
// shard generations.
//
// Durable sharded engines (WithShardStores) write each shard's delta to that
// shard's own write-ahead log, then commit the batch by appending the global
// generation and the full per-shard generation vector to a dedicated vector
// log — the commit point. Recovery replays each shard to exactly its slot in
// the newest committed vector, truncating unacknowledged shard appends, so a
// crash at any point lands on a consistent cut covering every acknowledged
// batch.

// WithShards partitions the engine's tuples across n shard engines; n <= 1
// keeps the engine unsharded and is the default. Search, Stream, SearchBatch
// and Apply keep their exact semantics — and their exact output bytes — at
// every shard count; sharding only changes how the work is spread across
// goroutines. Combine with WithShardStores for durability (WithStore is for
// unsharded engines and cannot be combined with sharding).
func WithShards(n int) Option {
	return func(c *Config) { c.shards = n }
}

// ShardStores is the per-shard durable layout of a sharded engine: one
// store directory per shard plus the vector log that commits cross-shard
// cuts. Open one with OpenShardedStore and pass it to WithShardStores.
type ShardStores = shard.Stores

// OpenShardedStore opens — creating it if needed — the sharded durability
// layout rooted at dir: n per-shard stores (each a CRC-framed write-ahead
// log plus newest snapshot, in dir/shard-<i>) and the vector log recording
// committed cross-shard generations (dir/meta/vector.log). Reopening an
// existing layout with a different n fails: the partitioner is fixed at
// first boot. Pass the result to WithShardStores; close it after the engine
// is discarded.
func OpenShardedStore(dir string, n int) (*ShardStores, error) {
	return shard.OpenStores(dir, n)
}

// WithShardStores attaches the per-shard durability layout to a sharded
// engine. The shard count comes from the layout; WithShards may be given
// alongside but must agree. New recovers the newest committed cut from the
// vector log before building, and every later Apply appends each touched
// shard's delta to its own log and commits the batch through the vector log
// — fsynced before the generation is returned. The engine owns the layout
// until it is discarded; callers must not touch it concurrently.
func WithShardStores(s *ShardStores) Option {
	return func(c *Config) { c.shardStores = s }
}

// newShardedPathsSearcher builds the paths searcher of one sharded
// generation: the same enumeration engine as the unsharded path, with
// keyword matching swapped for the cut's scatter-gather matcher. Everything
// downstream of matching — candidate sorting, pair enumeration, dedup, the
// rank-preserving merge, annotation — is literally the unsharded code, which
// is what the byte-identity guarantee rests on.
func newShardedPathsSearcher(c Components, states *shard.States) (Searcher, error) {
	m := shard.NewMatcher(states, c.Graph.Tuples())
	e, err := paths.NewWithMatcher(c.DB, c.Graph, c.Index, c.Analyzer, m, paths.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return pathsSearcher{engine: e}, nil
}

// applySharded is Apply for sharded engines. The flow:
//
//  1. Derive the touched shards from the ops and lease them (every batch
//     leases in ascending shard order — no deadlocks; disjoint batches run
//     concurrently). Ops whose owner cannot be derived lease every shard.
//  2. Stage the batch once against the composed snapshot current at entry —
//     the identical staging code, so every validation error is byte-identical
//     to the unsharded engine's.
//  3. Split the net delta by owner shard and prepare each touched shard's
//     next Part in parallel (durable groups append each shard's delta to its
//     log here).
//  4. Under the publish lock: if a disjoint batch published meanwhile,
//     re-stage against the newest snapshot (the lease guarantees this cannot
//     fail — no published batch touched our tuples); commit the new
//     generation vector through the vector log; publish.
func (e *Engine) applySharded(ctx context.Context, m Mutation) (uint64, error) {
	g := e.group
	if len(m.Ops) == 0 {
		return e.current().gen, nil
	}
	touched, ok := e.touchedShards(m)
	if !ok {
		// An op's owner could not be derived (bad table, malformed key...).
		// Lease everything and let stage produce the exact error the
		// unsharded engine would — derivation must never invent error paths.
		touched = g.AllShards()
	}
	release := g.Lease(touched)
	defer release()

	// Staging extends the pinned snapshot's copy-on-write symbol tables;
	// stageMu keeps concurrent disjoint-shard batches from extending the
	// same parent tables at once (the per-shard Prepare below still runs
	// outside it, so disjoint batches overlap where it matters).
	e.stageMu.Lock()
	snap := e.current()
	next, removed, added, err := e.stageNet(ctx, snap, m)
	e.stageMu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		// Cancelled after staging but before any durable append: nothing has
		// landed. As in the unsharded path, no cancellation checks happen
		// below — once shard appends land, the batch must commit or abort
		// explicitly, never dangle on a caller's context.
		return 0, err
	}
	deltas := g.Split(removed, added)
	for s := range deltas {
		if !containsShard(touched, s) {
			// Unreachable by construction: touchedShards covers every op or
			// falls back to all shards. Guard anyway — publishing to an
			// unleased shard would race a concurrent batch.
			return 0, fmt.Errorf("kws: internal: batch touched unleased shard %d", s)
		}
	}
	prepared, err := g.Prepare(snap.shards, deltas)
	if err != nil {
		if g.Durable() {
			return 0, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		return 0, err
	}

	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	cur := e.current()
	if cur != snap {
		// A batch on disjoint shards published while we prepared. Re-stage
		// against the newest composed snapshot: our leased shards' tuples are
		// untouched by whatever published (they would have needed our
		// leases), so the re-stage cannot fail and its net delta matches the
		// prepared parts tuple for tuple.
		e.stageMu.Lock()
		//kwslint:ignore ctxflow the batch is past its cancellation point; see above
		next, _, _, err = e.stageNet(context.Background(), cur, m)
		e.stageMu.Unlock()
		if err != nil {
			if aerr := g.Abort(cur.shards, prepared); aerr != nil {
				return 0, fmt.Errorf("%w: %v (and abort failed: %v)", ErrPersistence, err, aerr)
			}
			return 0, fmt.Errorf("kws: internal: sharded rebase failed: %w", err)
		}
	}
	nextStates := cur.shards.Next(next.gen, prepared)
	if err := g.Commit(nextStates); err != nil {
		if aerr := g.Abort(cur.shards, prepared); aerr != nil {
			return 0, fmt.Errorf("%w: %v (and abort failed: %v)", ErrPersistence, err, aerr)
		}
		return 0, fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	published := &snapshot{
		gen:       next.gen,
		comp:      next.comp,
		shards:    nextStates,
		searchers: make(map[EngineKind]Searcher),
	}
	e.snap.Store(published)
	e.maybeSnapshotSharded(published)
	return published.gen, nil
}

// touchedShards derives the owner shards of every op in the batch without
// staging it: inserts own the shard of their row's primary key, deletes and
// updates the shard of their key — plus, for updates rewriting primary-key
// columns, the shard of the moved-to identity. ok is false when any op's
// owner cannot be derived (unknown table, malformed key, bad value type);
// the caller then leases every shard so staging reports the exact error.
func (e *Engine) touchedShards(m Mutation) ([]int, bool) {
	snap := e.current()
	p := e.group.Partitioner()
	seen := make(map[int]bool)
	for _, op := range m.Ops {
		t, ok := snap.comp.DB.Table(op.Table)
		if !ok {
			return nil, false
		}
		switch op.Kind {
		case OpInsert:
			key, err := encodePK(t, pkFromRow(t, op.Row))
			if err != nil {
				return nil, false
			}
			seen[p.Owner(relation.TupleID{Relation: op.Table, Key: key})] = true
		case OpDelete:
			key, err := encodePK(t, op.Key)
			if err != nil {
				return nil, false
			}
			seen[p.Owner(relation.TupleID{Relation: op.Table, Key: key})] = true
		case OpUpdate:
			key, err := encodePK(t, op.Key)
			if err != nil {
				return nil, false
			}
			seen[p.Owner(relation.TupleID{Relation: op.Table, Key: key})] = true
			if newKey, moved, err := movedKey(t, op, key); err != nil {
				return nil, false
			} else if moved {
				seen[p.Owner(relation.TupleID{Relation: op.Table, Key: newKey})] = true
			}
		default:
			return nil, false
		}
	}
	shards := make([]int, 0, len(seen))
	for s := range seen {
		shards = append(shards, s)
	}
	// Lease order is the deadlock-avoidance order; map iteration must not
	// leak into it.
	sort.Ints(shards)
	return shards, true
}

// pkFromRow projects an insert's row map down to its primary-key columns, in
// the shape encodePK expects. Missing columns stay missing — encodePK then
// rejects the selector and the caller falls back to leasing every shard.
func pkFromRow(t *relation.Table, row map[string]any) map[string]any {
	s := t.Schema()
	key := make(map[string]any, len(s.PrimaryKey))
	for _, col := range s.PrimaryKey {
		if v, ok := row[col]; ok {
			key[col] = v
		}
	}
	return key
}

// movedKey reports whether an update rewrites a primary-key column and, if
// so, the moved-to encoded key: the old tuple's key columns overlaid with
// the update's row values.
func movedKey(t *relation.Table, op Op, oldKey string) (string, bool, error) {
	s := t.Schema()
	touchesPK := false
	for _, col := range s.PrimaryKey {
		if _, ok := op.Row[col]; ok {
			touchesPK = true
			break
		}
	}
	if !touchesPK {
		return "", false, nil
	}
	old, ok := t.ByPrimaryKey(oldKey)
	if !ok {
		return "", false, fmt.Errorf("no tuple with key %q", oldKey)
	}
	vals := make([]relation.Value, len(s.PrimaryKey))
	for i, col := range s.PrimaryKey {
		v, set := op.Row[col]
		if !set {
			vals[i] = old.Value(col)
			continue
		}
		def, _ := s.Column(col)
		rv, err := toValue(v, def.Type)
		if err != nil {
			return "", false, err
		}
		if rv.IsNull() {
			return "", false, fmt.Errorf("key column %s is NULL", col)
		}
		vals[i] = rv
	}
	newKey := relation.EncodeKey(vals)
	return newKey, newKey != oldKey, nil
}

// containsShard reports whether the leased set covers shard s.
func containsShard(leased []int, s int) bool {
	for _, l := range leased {
		if l == s {
			return true
		}
	}
	return false
}

// maybeSnapshotSharded checkpoints every shard when the published generation
// hits the snapshot cadence. Like the unsharded path, failures are counted
// (PersistStats.SnapshotErrors), never surfaced: each shard's WAL already
// holds its generations.
func (e *Engine) maybeSnapshotSharded(next *snapshot) {
	if !e.group.Durable() || e.snapshotEvery <= 0 || next.gen%uint64(e.snapshotEvery) != 0 {
		return
	}
	if err := e.group.Checkpoint(next.shards); err != nil {
		e.snapErrs.Add(1)
	}
}

// GenerationVector returns the per-shard generation vector of the current
// cut — entry i is the number of committed batches that touched shard i,
// while Generation counts all committed batches. It returns nil for
// unsharded engines. Readers pinning a snapshot pin the whole vector, so two
// calls observing the same vector observed identical data on every shard.
func (e *Engine) GenerationVector() []uint64 {
	snap := e.current()
	if snap.shards == nil {
		return nil
	}
	return snap.shards.Vector()
}

// ShardStat describes one shard of a sharded engine's current cut.
type ShardStat struct {
	// Shard is the shard number (0-based).
	Shard int
	// Generation is the shard's own generation: the number of committed
	// batches that changed this shard.
	Generation uint64
	// Tuples counts the tuples the shard owns.
	Tuples int
	// GraphEdges counts the edges of the shard's partition graph.
	GraphEdges int
	// IndexTerms and IndexDocs size the shard's inverted index.
	IndexTerms int
	IndexDocs  int
	// WALBytes, WALRecords, SnapshotGeneration and SnapshotBytes describe
	// the shard's durable state; all zero for memory-only engines.
	WALBytes           int64
	WALRecords         int64
	SnapshotGeneration uint64
	SnapshotBytes      int64
}

// ShardStats returns one ShardStat per shard of the current cut, in shard
// order; ok is false for unsharded engines.
func (e *Engine) ShardStats() (stats []ShardStat, ok bool) {
	snap := e.current()
	if snap.shards == nil {
		return nil, false
	}
	g := e.group
	stats = make([]ShardStat, len(snap.shards.Parts))
	for s, part := range snap.shards.Parts {
		st := ShardStat{
			Shard:      s,
			Generation: part.Gen,
			Tuples:     part.DB.Stats().Tuples,
			GraphEdges: part.Graph.EdgeCount(),
		}
		st.IndexTerms, st.IndexDocs = part.Index.TermCount(), part.Index.DocCount()
		if g.Durable() {
			sst := g.Stores().Shard(s).Stats()
			st.WALBytes = sst.WALBytes
			st.WALRecords = sst.WALRecords
			st.SnapshotGeneration = sst.SnapshotGen
			st.SnapshotBytes = sst.SnapshotBytes
		}
		stats[s] = st
	}
	return stats, true
}
