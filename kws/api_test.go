package kws

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ranking"
)

// allEngineKinds are the built-in strategies every cross-engine test covers.
var allEngineKinds = []EngineKind{EnginePaths, EngineMTJNT, EngineBANKS}

// TestConcurrentMixedQueries drives one shared engine from many goroutines,
// each with its own engine kind, ranking, TopK and labeler, and checks every
// result set against the sequential baseline. Run with -race.
func TestConcurrentMixedQueries(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := []Query{
		{Keywords: []string{"Smith", "XML"}, Engine: EnginePaths, Ranking: RankCloseFirst, MaxJoins: 3},
		{Keywords: []string{"Smith", "XML"}, Engine: EnginePaths, Ranking: RankERLength, MaxJoins: 3, TopK: 2},
		{Keywords: []string{"Smith", "XML"}, Engine: EngineMTJNT, Ranking: RankRDBLength, MaxJoins: 3},
		{Keywords: []string{"Smith", "XML"}, Engine: EngineBANKS, Ranking: RankCloseFirst, MaxJoins: 3},
		{Keywords: []string{"Alice", "XML"}, Engine: EnginePaths, Ranking: RankLoosenessPenalty, MaxJoins: 4},
		{Keywords: []string{"Smith", "XML"}, Engine: EnginePaths, Ranking: RankCombined, MaxJoins: 3, InstanceChecks: ToggleOff},
		{Keywords: []string{"Smith", "XML"}, Engine: EnginePaths, Ranking: RankCloseFirst, MaxJoins: 3, Labeler: PaperLabeler()},
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		if want[i], err = engine.Search(ctx, q); err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q Query) {
				defer wg.Done()
				got, err := engine.Search(ctx, q)
				if err != nil {
					errs <- fmt.Errorf("query %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("query %d: concurrent result diverges from sequential baseline", i)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCancellationBeforeSearch checks that an already-cancelled context
// aborts every engine before it enumerates anything.
func TestCancellationBeforeSearch(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range allEngineKinds {
		_, err := engine.Search(ctx, Query{Keywords: []string{"Smith", "XML"}, Engine: kind, MaxJoins: 3})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Search on cancelled context = %v, want context.Canceled", kind, err)
		}
	}
}

// TestCancellationMidStream cancels the context from inside the first yield
// and checks that each engine stops mid-enumeration with ctx.Err() instead
// of finishing the query.
func TestCancellationMidStream(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allEngineKinds {
		q := Query{Keywords: []string{"Smith", "XML"}, Engine: kind, MaxJoins: 3}
		total := 0
		if err := engine.Stream(context.Background(), q, func(Result) bool {
			total++
			return true
		}); err != nil {
			t.Fatalf("%s: uncancelled stream: %v", kind, err)
		}
		if total < 2 {
			t.Fatalf("%s: need at least 2 answers to observe a mid-stream cancel, got %d", kind, total)
		}
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		err := engine.Stream(ctx, q, func(Result) bool {
			seen++
			cancel() // keep streaming from the caller's side ...
			return true
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-stream cancel = %v, want context.Canceled", kind, err)
		}
		if seen == 0 || seen >= total {
			t.Errorf("%s: cancelled stream delivered %d of %d answers, want a strict prefix", kind, seen, total)
		}
	}
}

// TestGoldenShimEquivalence pins the redesigned API to the legacy shim: for
// every engine kind and ranking strategy, Search(ctx, Query) on the paper's
// running example returns exactly the ranked results of Open + Search.
func TestGoldenShimEquivalence(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, kind := range allEngineKinds {
		for _, strategy := range []RankStrategy{RankRDBLength, RankERLength, RankCloseFirst, RankLoosenessPenalty, RankHubPenalty, RankCombined} {
			legacy, err := Open(PaperExample(), Config{Engine: kind, Ranking: strategy, MaxJoins: 3})
			if err != nil {
				t.Fatalf("Open(%s, %s): %v", kind, strategy, err)
			}
			want, err := legacy.Search("Smith", "XML")
			if err != nil {
				t.Fatalf("legacy Search(%s, %s): %v", kind, strategy, err)
			}
			got, err := engine.Search(ctx, Query{
				Keywords: []string{"Smith", "XML"},
				Engine:   kind,
				Ranking:  strategy,
				MaxJoins: 3,
			})
			if err != nil {
				t.Fatalf("Search(%s, %s): %v", kind, strategy, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: redesigned API diverges from the legacy shim:\n got %+v\nwant %+v", kind, strategy, got, want)
			}
		}
	}
}

// TestStreamIsUnrankedAndCapped checks the streaming contract: results are
// unranked, arrive capped by TopK, and are always a subset of the batch
// answers.
func TestStreamIsUnrankedAndCapped(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := engine.Search(ctx, Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	batch := make(map[string]bool, len(all))
	for _, r := range all {
		batch[r.Connection] = true
	}
	var streamed []Result
	err = engine.Stream(ctx, Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: 3}, func(r Result) bool {
		streamed = append(streamed, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 3 {
		t.Fatalf("streamed %d results, want TopK=3", len(streamed))
	}
	for _, r := range streamed {
		if r.Rank != 0 {
			t.Errorf("streamed result has rank %d, want unranked", r.Rank)
		}
		if !batch[r.Connection] {
			t.Errorf("streamed %q missing from batch results", r.Connection)
		}
	}
}

// TestResultsIterator checks the iter.Seq2 variant, including early break.
func TestResultsIterator(t *testing.T) {
	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for r, err := range engine.Results(context.Background(), Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3}) {
		if err != nil {
			t.Fatal(err)
		}
		if r.Connection == "" {
			t.Error("empty streamed result")
		}
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Errorf("iterated %d results before break, want 2", count)
	}
	// A cancelled context surfaces as the final iterator element.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last error
	for _, err := range engine.Results(ctx, Query{Keywords: []string{"Smith", "XML"}}) {
		last = err
	}
	if !errors.Is(last, context.Canceled) {
		t.Errorf("iterator on cancelled context ended with %v, want context.Canceled", last)
	}
}

// closeOnly is a custom searcher for the registry test: it delegates to the
// built-in paths engine and keeps only guaranteed-close answers.
type closeOnly struct{ inner Searcher }

func (s closeOnly) Stream(ctx context.Context, q Query, yield func(Answer) bool) error {
	return s.inner.Stream(ctx, q, func(a Answer) bool {
		if !a.Analysis.Close {
			return true
		}
		return yield(a)
	})
}

// TestRegistries exercises RegisterEngine and RegisterRanker with custom
// strategies and checks that unknown names fail with the registered list.
func TestRegistries(t *testing.T) {
	RegisterEngine("close-only", func(c Components) (Searcher, error) {
		inner, err := newPathsSearcher(c)
		if err != nil {
			return nil, err
		}
		return closeOnly{inner: inner}, nil
	})
	RegisterRanker("content-only", func(Query) (ranking.Scorer, error) {
		return ranking.Content{}, nil
	})

	engine, err := New(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := engine.Search(ctx, Query{
		Keywords: []string{"Smith", "XML"},
		Engine:   "close-only",
		Ranking:  "content-only",
		MaxJoins: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("close-only engine returned %d answers, want the 3 close ones", len(got))
	}
	for _, r := range got {
		if !r.Close {
			t.Errorf("close-only engine leaked loose answer %q", r.Connection)
		}
	}

	if _, err := engine.Search(ctx, Query{Keywords: []string{"x"}, Engine: "bogus"}); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown engine error = %v, want the registered kinds listed", err)
	}
	if _, err := engine.Search(ctx, Query{Keywords: []string{"x"}, Ranking: "bogus"}); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown ranking error = %v, want the registered strategies listed", err)
	}
}

// TestValidationBeforeConstruction checks that New rejects unknown engine
// and ranking names before looking at the database at all: a database with a
// broken catalog still reports the configuration error first.
func TestValidationBeforeConstruction(t *testing.T) {
	broken := NewDatabase("broken")
	if err := broken.AddTable(TableSpec{
		Name:       "T",
		Columns:    []ColumnSpec{{Name: "A", Type: "string"}, {Name: "B", Type: "string"}},
		PrimaryKey: []string{"A"},
		ForeignKeys: []ForeignKeySpec{
			{Columns: []string{"B"}, RefTable: "MISSING", RefColumns: []string{"ID"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := New(broken, WithDefaults(Config{Engine: "bogus"}))
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("New error = %v, want the engine validated before the database", err)
	}
	_, err = New(broken, WithDefaults(Config{Ranking: "bogus"}))
	if err == nil || !strings.Contains(err.Error(), "unknown ranking") {
		t.Errorf("New error = %v, want the ranking validated before the database", err)
	}
	// With a valid configuration the database error surfaces as before.
	if _, err := New(broken); err == nil {
		t.Error("New should reject the broken catalog")
	}
}

// TestPerQueryLabeler checks that a query labeler overrides the engine
// labeler for that call only.
func TestPerQueryLabeler(t *testing.T) {
	engine, err := New(PaperExample(), WithLabeler(PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Keywords: []string{"Smith", "XML"}, MaxJoins: 3, TopK: 1}
	withPaper, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withPaper[0].Connection, "e1") {
		t.Errorf("engine labeler not applied: %q", withPaper[0].Connection)
	}
	q.Labeler = func(id TupleID) string { return "<" + id.Relation + ">" }
	overridden, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(overridden[0].Connection, "<EMPLOYEE>") {
		t.Errorf("query labeler not applied: %q", overridden[0].Connection)
	}
	// The engine default is untouched for later queries.
	q.Labeler = nil
	again, err := engine.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Connection != withPaper[0].Connection {
		t.Errorf("engine labeler lost after per-query override: %q", again[0].Connection)
	}
}

// TestOptionOrderDoesNotMatter checks that WithDefaults merges instead of
// overwriting, so it composes with WithLabeler in either order.
func TestOptionOrderDoesNotMatter(t *testing.T) {
	for _, opts := range [][]Option{
		{WithLabeler(PaperLabeler()), WithDefaults(Config{MaxJoins: 3})},
		{WithDefaults(Config{MaxJoins: 3}), WithLabeler(PaperLabeler())},
	} {
		engine, err := New(PaperExample(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := engine.Search(context.Background(), Query{Keywords: []string{"Smith", "XML"}, TopK: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rs[0].Connection, "e1") && !strings.Contains(rs[0].Connection, "e2") {
			t.Errorf("labeler lost to option order: %q", rs[0].Connection)
		}
	}
}

// TestLegacyShimIsTheNewEngine checks that the deprecated facade exposes the
// embedded context-aware engine, so migrating callers can mix styles.
func TestLegacyShimIsTheNewEngine(t *testing.T) {
	legacy, err := Open(PaperExample(), Config{MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := legacy.Search("Smith", "XML")
	if err != nil {
		t.Fatal(err)
	}
	modern, err := legacy.Engine.Search(context.Background(), Query{Keywords: []string{"Smith", "XML"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, modern) {
		t.Error("legacy shim and embedded engine disagree")
	}
}
