// Command kws-bench drives load against the keyword-search engine and
// writes a machine-readable performance report.
//
// Usage:
//
//	kws-bench                                   # smoke profile, all suites, in process
//	kws-bench -profile standard -suites scale-n -modes read,mixed
//	kws-bench -target http://localhost:8080 -suites bibliography -out BENCH.json
//	kws-bench -check BENCH.json                 # validate a committed report
//	kws-bench -list                             # show suites and profiles
//
// Each run measures every selected (suite, mode) pair and writes one JSON
// report (see docs/benchmarking.md for the schema). Against a remote kwsd
// the server must be booted with the suite's matching database — kws-bench
// prints the expected -db flag per suite in -list. Workloads are seeded and
// deterministic: the same flags replay the same operation sequence.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	profile string
	suites  []string
	modes   []bench.Mode
	target  string
	out     string
	check   string
	list    bool
	scale   int
	seed    int64
	workers int
	shards  []int
}

func parseFlags(argv []string) (config, error) {
	fs := flag.NewFlagSet("kws-bench", flag.ContinueOnError)
	var (
		profile = fs.String("profile", "smoke", `load profile: "smoke" or "standard"`)
		suites  = fs.String("suites", "", "comma-separated suites to run (default: all)")
		modes   = fs.String("modes", "", "comma-separated modes: read,mixed,batch,stream (default: all)")
		target  = fs.String("target", "inproc", `"inproc" or a kwsd base URL like http://localhost:8080`)
		out     = fs.String("out", "-", `report destination ("-" = stdout)`)
		check   = fs.String("check", "", "validate an existing report file and exit")
		list    = fs.Bool("list", false, "list suites and profiles and exit")
		scale   = fs.Int("scale", 0, "dataset scale override (0 = suite default)")
		seed    = fs.Int64("seed", 0, "workload seed override (0 = profile default)")
		workers = fs.Int("workers", 0, "worker-pool size override (0 = profile default)")
		shards  = fs.String("shards", "", "comma-separated engine shard counts to sweep, e.g. 1,4 (inproc only; default 1)")
	)
	if err := fs.Parse(argv); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := config{
		profile: *profile,
		target:  *target,
		out:     *out,
		check:   *check,
		list:    *list,
		scale:   *scale,
		seed:    *seed,
		workers: *workers,
	}
	if *suites != "" {
		cfg.suites = splitList(*suites)
	}
	for _, m := range splitList(*modes) {
		mode, err := bench.ParseMode(m)
		if err != nil {
			return config{}, err
		}
		cfg.modes = append(cfg.modes, mode)
	}
	if len(cfg.modes) == 0 {
		cfg.modes = bench.Modes()
	}
	for _, s := range splitList(*shards) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return config{}, fmt.Errorf("-shards entries must be positive integers, got %q", s)
		}
		cfg.shards = append(cfg.shards, n)
	}
	if len(cfg.shards) == 0 {
		cfg.shards = []int{1}
	}
	if cfg.target != "inproc" {
		for _, n := range cfg.shards {
			if n != 1 {
				return config{}, fmt.Errorf("-shards sweeps only the in-process engine; the remote server picks its own count (kwsd -shards)")
			}
		}
	}
	return cfg, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(ctx context.Context, argv []string, stdout io.Writer) error {
	cfg, err := parseFlags(argv)
	if err != nil {
		return err
	}
	if cfg.list {
		return listSuites(stdout)
	}
	if cfg.check != "" {
		return checkReport(stdout, cfg.check)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	profile, err := bench.ProfileByName(cfg.profile)
	if err != nil {
		return err
	}
	if cfg.seed != 0 {
		profile.Seed = cfg.seed
	}
	if cfg.workers != 0 {
		profile.Workers = cfg.workers
	}
	suiteOpts := bench.SuiteOptions{Scale: cfg.scale, Seed: profile.Seed}
	names := cfg.suites
	if len(names) == 0 {
		names = bench.Names()
	}

	var results []bench.SuiteResult
	for _, name := range names {
		sc, err := bench.Build(name, suiteOpts)
		if err != nil {
			return err
		}
		for _, shards := range cfg.shards {
			target, err := openTarget(cfg.target, sc, shards)
			if err != nil {
				return err
			}
			for _, mode := range cfg.modes {
				fmt.Fprintf(os.Stderr, "kws-bench: %s/%s against %s (shards=%d)...\n", name, mode, target.Kind(), shards)
				res, err := bench.Run(ctx, target, sc, mode, profile)
				if err != nil {
					target.Close()
					return fmt.Errorf("suite %s mode %s shards %d: %w", name, mode, shards, err)
				}
				res.Shards = shards
				results = append(results, res)
			}
			target.Close()
		}
	}

	report := bench.NewReport(echoConfig(cfg, profile, names), results)
	return writeReport(stdout, cfg.out, report)
}

// openTarget builds the target for one suite: the in-process engine path
// (at the requested shard count), or a remote kwsd that must serve the
// suite's database (Scenario.ServerDB).
func openTarget(spec string, sc bench.Scenario, shards int) (bench.Target, error) {
	if spec == "inproc" {
		return bench.NewShardedEngineTarget(sc, shards)
	}
	if !strings.HasPrefix(spec, "http://") && !strings.HasPrefix(spec, "https://") {
		return nil, fmt.Errorf("target must be \"inproc\" or an http(s) URL, got %q", spec)
	}
	return bench.NewRemoteTarget(spec), nil
}

func echoConfig(cfg config, p bench.Profile, suites []string) bench.ConfigEcho {
	modes := make([]string, len(cfg.modes))
	for i, m := range cfg.modes {
		modes[i] = string(m)
	}
	targetKind := "inproc"
	if cfg.target != "inproc" {
		targetKind = "remote"
	}
	scale := cfg.scale
	if scale == 0 {
		scale = bench.SuiteOptions{}.WithDefaults().Scale
	}
	sort.Strings(suites)
	var shards []int
	for _, n := range cfg.shards {
		if n > 1 {
			shards = append([]int(nil), cfg.shards...)
			break
		}
	}
	return bench.ConfigEcho{
		Profile:         p.Name,
		Target:          targetKind,
		Suites:          suites,
		Modes:           modes,
		Scale:           scale,
		Seed:            p.Seed,
		Workers:         p.Workers,
		RatePerSec:      p.RatePerSec,
		WarmupOps:       p.WarmupOps,
		MeasureOps:      p.MeasureOps,
		DurationSeconds: p.Duration.Seconds(),
		BatchSize:       p.BatchSize,
		MutateEvery:     p.MutateEvery,
		Shards:          shards,
	}
}

func writeReport(stdout io.Writer, out string, report bench.Report) error {
	if out == "-" || out == "" {
		return bench.WriteReport(stdout, report)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteReport(f, report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkReport validates a committed report: parseable, schema-stable, and
// error-free. CI runs this against the report a smoke run just wrote.
func checkReport(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	report, err := bench.ReadReport(f)
	if err != nil {
		return err
	}
	if n := report.TotalErrors(); n > 0 {
		return fmt.Errorf("report %s records %d failed operations", path, n)
	}
	fmt.Fprintf(stdout, "ok: %s (%d suite rows, 0 errors)\n", path, len(report.Suites))
	return nil
}

func listSuites(stdout io.Writer) error {
	fmt.Fprintln(stdout, "suites (kwsd -db flag in parentheses):")
	for _, name := range bench.Names() {
		sc, err := bench.Build(name, bench.SuiteOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-14s (%-9s) %s\n", sc.Name, sc.ServerDB, sc.Description)
	}
	fmt.Fprintln(stdout, "profiles:")
	for _, p := range []bench.Profile{bench.SmokeProfile(), bench.StandardProfile()} {
		fmt.Fprintf(stdout, "  %-14s workers=%d warmup=%d measure=%d duration=%s\n",
			p.Name, p.Workers, p.WarmupOps, p.MeasureOps, p.Duration)
	}
	fmt.Fprintln(stdout, "modes:", bench.Modes())
	return nil
}
