package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-profile", "standard", "-suites", "bibliography, scale-n",
		"-modes", "read,mixed", "-target", "http://localhost:1", "-scale", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.profile != "standard" || cfg.scale != 3 || cfg.target != "http://localhost:1" {
		t.Errorf("parsed config = %+v", cfg)
	}
	if len(cfg.suites) != 2 || cfg.suites[1] != "scale-n" {
		t.Errorf("suites = %v", cfg.suites)
	}
	if len(cfg.modes) != 2 || cfg.modes[0] != bench.ModeRead {
		t.Errorf("modes = %v", cfg.modes)
	}

	cfg, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.modes) != len(bench.Modes()) || len(cfg.suites) != 0 {
		t.Errorf("default config = %+v", cfg)
	}

	if _, err := parseFlags([]string{"-modes", "bogus"}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := parseFlags([]string{"positional"}); err == nil {
		t.Error("positional argument accepted")
	}
}

func TestParseShardsFlag(t *testing.T) {
	cfg, err := parseFlags([]string{"-shards", "1, 4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.shards) != 2 || cfg.shards[0] != 1 || cfg.shards[1] != 4 {
		t.Errorf("shards = %v, want [1 4]", cfg.shards)
	}
	cfg, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.shards) != 1 || cfg.shards[0] != 1 {
		t.Errorf("default shards = %v, want [1]", cfg.shards)
	}
	if _, err := parseFlags([]string{"-shards", "0"}); err == nil {
		t.Error("-shards 0 accepted")
	}
	if _, err := parseFlags([]string{"-shards", "two"}); err == nil {
		t.Error("non-numeric -shards accepted")
	}
	// A remote server picks its own shard count; sweeping against it is
	// rejected rather than silently measuring the wrong thing.
	if _, err := parseFlags([]string{"-target", "http://localhost:1", "-shards", "1,4"}); err == nil {
		t.Error("-shards sweep accepted against a remote target")
	}
	if _, err := parseFlags([]string{"-target", "http://localhost:1", "-shards", "1"}); err != nil {
		t.Errorf("-shards 1 rejected against a remote target: %v", err)
	}
}

// TestShardedReportRoundTrip runs the smallest real sweep in process and
// checks the report: one row per (mode, shard count), the sharded rows
// labelled, and the config echoing the sweep.
func TestShardedReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real bench sweep")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	err := run(t.Context(), []string{
		"-profile", "smoke", "-suites", "bibliography", "-modes", "read",
		"-shards", "1,2", "-out", out,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	report, err := bench.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suites) != 2 {
		t.Fatalf("report has %d rows, want 2: %+v", len(report.Suites), report.Suites)
	}
	counts := map[int]bool{}
	for _, row := range report.Suites {
		counts[row.Shards] = true
	}
	if !counts[1] || !counts[2] {
		t.Errorf("rows cover shard counts %v, want 1 and 2", counts)
	}
	if len(report.Config.Shards) != 2 {
		t.Errorf("config echo shards = %v, want [1 2]", report.Config.Shards)
	}
}

func TestOpenTargetRejectsBadSpec(t *testing.T) {
	sc, err := bench.Build("bibliography", bench.SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openTarget("localhost:8080", sc, 1); err == nil {
		t.Error("scheme-less target accepted")
	}
	target, err := openTarget("inproc", sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	target.Close()
}

func TestListSuites(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bibliography", "logs-search", "json-docs", "scale-n", "smoke", "standard"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list output lacks %q:\n%s", want, buf.String())
		}
	}
}

// TestRunSmokeEndToEnd runs the real smoke profile for one small suite in
// process, writes the report to disk and re-validates it with -check — the
// exact cycle the CI bench-harness job performs.
func TestRunSmokeEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run(t.Context(), []string{
		"-profile", "smoke", "-suites", "bibliography", "-scale", "1", "-out", out,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	report, err := bench.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suites) != len(bench.Modes()) {
		t.Fatalf("report has %d rows, want %d", len(report.Suites), len(bench.Modes()))
	}
	if report.TotalErrors() != 0 {
		t.Fatalf("smoke run recorded %d errors", report.TotalErrors())
	}
	if report.Config.Profile != "smoke" || report.Config.Target != "inproc" {
		t.Errorf("config echo = %+v", report.Config)
	}

	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-check", out}, &buf); err != nil {
		t.Fatalf("-check rejected a fresh report: %v", err)
	}
	if !strings.Contains(buf.String(), "ok:") {
		t.Errorf("-check output = %q", buf.String())
	}
}

func TestCheckRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"-check", bad}, os.Stderr); err == nil {
		t.Error("-check accepted malformed JSON")
	}
	if err := run(t.Context(), []string{"-check", filepath.Join(dir, "missing.json")}, os.Stderr); err == nil {
		t.Error("-check accepted a missing file")
	}

	// A structurally valid report that records failures must fail -check.
	failing := bench.NewReport(bench.ConfigEcho{}, []bench.SuiteResult{{
		Suite: "bibliography", Mode: "read", Target: "inproc",
		Ops: 10, QueriesPerOp: 1, Errors: 2,
		LatencyUS: bench.Latency{P50: 1, P95: 2, P99: 3},
	}})
	path := filepath.Join(dir, "failing.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteReport(f, failing); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(t.Context(), []string{"-check", path}, os.Stderr); err == nil {
		t.Error("-check accepted a report with errors")
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-profile", "bogus"}, os.Stderr); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run(ctx, []string{"-suites", "bogus"}, os.Stderr); err == nil {
		t.Error("unknown suite accepted")
	}
}
