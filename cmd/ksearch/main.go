// Command ksearch runs keyword queries against the built-in databases and
// prints ranked connections with their close/loose association analysis.
//
// Usage:
//
//	ksearch Smith XML
//	ksearch -db synthetic -scale 4 -ranking er-length -engine mtjnt databases Smith
//	ksearch -topk 5 -maxjoins 4 Alice XML
//	ksearch -stream -engine paths Smith XML   # print answers as they are found
//
// Interrupting a long search (Ctrl-C) cancels it through the query context.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/paperdb"
	"repro/kws"
)

func main() {
	var (
		database = flag.String("db", "paper", `database to search: "paper" (the running example) or "synthetic"`)
		scale    = flag.Int("scale", 2, "scale factor for the synthetic database")
		seed     = flag.Int64("seed", 1, "seed for the synthetic database")
		engine   = flag.String("engine", string(kws.EnginePaths), fmt.Sprintf("search engine: %v", kws.RegisteredEngines()))
		rank     = flag.String("ranking", string(kws.RankCloseFirst), fmt.Sprintf("ranking: %v", kws.RegisteredRankers()))
		maxJoins = flag.Int("maxjoins", 3, "maximum number of joins per connection")
		topK     = flag.Int("topk", 0, "return only the top K results (0 = all)")
		stream   = flag.Bool("stream", false, "print unranked answers as they are discovered instead of waiting for the full ranking")
		verbose  = flag.Bool("v", false, "print the per-join cardinality rendering as well")
	)
	flag.Parse()
	keywords := flag.Args()
	if len(keywords) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ksearch [flags] KEYWORD [KEYWORD...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx, *database, *scale, *seed, kws.EngineKind(*engine), kws.RankStrategy(*rank), *maxJoins, *topK, *stream, *verbose, keywords)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ksearch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, database string, scale int, seed int64, engine kws.EngineKind, rank kws.RankStrategy, maxJoins, topK int, stream, verbose bool, keywords []string) error {
	var (
		db      *kws.Database
		labeler kws.Labeler
	)
	switch database {
	case "paper":
		db = kws.PaperExample()
		labeler = paperdb.DisplayLabel
	case "synthetic":
		db = kws.SyntheticCompany(scale, seed)
	default:
		return fmt.Errorf("unknown database %q (use paper or synthetic)", database)
	}
	e, err := kws.New(db, kws.WithLabeler(labeler))
	if err != nil {
		return err
	}
	rels, tuples, edges := e.Stats()
	fmt.Printf("database: %s (%d relations, %d tuples, %d join edges)\n", database, rels, tuples, edges)
	fmt.Printf("query: %v  engine: %s  ranking: %s  budget: %d joins\n\n", keywords, engine, rank, maxJoins)

	query := kws.Query{
		Keywords: keywords,
		Engine:   engine,
		Ranking:  rank,
		MaxJoins: maxJoins,
		TopK:     topK,
	}
	if stream {
		n := 0
		err := e.Stream(ctx, query, func(r kws.Result) bool {
			n++
			printResult(n, r, verbose)
			return true
		})
		if err != nil {
			return err
		}
		if n == 0 {
			fmt.Println("no connections found")
		}
		return nil
	}
	results, err := e.Search(ctx, query)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Println("no connections found")
		return nil
	}
	for _, r := range results {
		printResult(r.Rank, r, verbose)
	}
	return nil
}

func printResult(position int, r kws.Result, verbose bool) {
	closeness := "loose"
	if r.Close {
		closeness = "close"
	} else if r.CorroboratedAtInstance {
		closeness = "loose (close at instance level)"
	}
	fmt.Printf("%2d. %s\n", position, r.Connection)
	fmt.Printf("    len(RDB)=%d len(ER)=%d class=%s association=%s score=%.2f\n",
		r.RDBLength, r.ERLength, r.Class, closeness, r.Score)
	if verbose {
		fmt.Printf("    %s\n", r.ConnectionWithCardinalities)
	}
}
