// Command ksearch runs keyword queries against the built-in databases and
// prints ranked connections with their close/loose association analysis.
//
// Usage:
//
//	ksearch Smith XML
//	ksearch -db synthetic -scale 4 -ranking er-length -engine mtjnt databases Smith
//	ksearch -topk 5 -maxjoins 4 Alice XML
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/kws"
)

func main() {
	var (
		database = flag.String("db", "paper", `database to search: "paper" (the running example) or "synthetic"`)
		scale    = flag.Int("scale", 2, "scale factor for the synthetic database")
		seed     = flag.Int64("seed", 1, "seed for the synthetic database")
		engine   = flag.String("engine", kws.EnginePaths, "search engine: paths, mtjnt, banks")
		rank     = flag.String("ranking", kws.RankCloseFirst, "ranking: rdb-length, er-length, close-first, looseness-penalty, hub-penalty, combined")
		maxJoins = flag.Int("maxjoins", 3, "maximum number of joins per connection")
		topK     = flag.Int("topk", 0, "return only the top K results (0 = all)")
		verbose  = flag.Bool("v", false, "print the per-join cardinality rendering as well")
	)
	flag.Parse()
	keywords := flag.Args()
	if len(keywords) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ksearch [flags] KEYWORD [KEYWORD...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*database, *scale, *seed, *engine, *rank, *maxJoins, *topK, *verbose, keywords); err != nil {
		fmt.Fprintln(os.Stderr, "ksearch:", err)
		os.Exit(1)
	}
}

func run(database string, scale int, seed int64, engine, rank string, maxJoins, topK int, verbose bool, keywords []string) error {
	var db *kws.Database
	switch database {
	case "paper":
		db = kws.PaperExample()
	case "synthetic":
		db = kws.SyntheticCompany(scale, seed)
	default:
		return fmt.Errorf("unknown database %q (use paper or synthetic)", database)
	}
	e, err := kws.Open(db, kws.Config{
		Engine:   engine,
		Ranking:  rank,
		MaxJoins: maxJoins,
		TopK:     topK,
	})
	if err != nil {
		return err
	}
	rels, tuples, edges := e.Stats()
	fmt.Printf("database: %s (%d relations, %d tuples, %d join edges)\n", database, rels, tuples, edges)
	fmt.Printf("query: %v  engine: %s  ranking: %s  budget: %d joins\n\n", keywords, engine, rank, maxJoins)

	results, err := e.Search(keywords...)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Println("no connections found")
		return nil
	}
	for _, r := range results {
		closeness := "loose"
		if r.Close {
			closeness = "close"
		} else if r.CorroboratedAtInstance {
			closeness = "loose (close at instance level)"
		}
		fmt.Printf("%2d. %s\n", r.Rank, r.Connection)
		fmt.Printf("    len(RDB)=%d len(ER)=%d class=%s association=%s score=%.2f\n",
			r.RDBLength, r.ERLength, r.Class, closeness, r.Score)
		if verbose {
			fmt.Printf("    %s\n", r.ConnectionWithCardinalities)
		}
	}
	return nil
}
