// Command ksearch runs keyword queries against the built-in databases and
// prints ranked connections with their close/loose association analysis.
//
// Usage:
//
//	ksearch Smith XML
//	ksearch -db synthetic -scale 4 -ranking er-length -engine mtjnt databases Smith
//	ksearch -topk 5 -maxjoins 4 Alice XML
//	ksearch -stream -engine paths Smith XML   # print answers as they are found
//	ksearch -remote http://localhost:8080 Smith XML   # query a running kwsd
//
// With -remote the query is sent to a kwsd server over the wire format of
// docs/http-api.md instead of building a local engine; all query flags
// (-engine, -ranking, -maxjoins, -topk, -stream) work the same way.
//
// Interrupting a long search (Ctrl-C) cancels it through the query context.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"repro/internal/httpapi"
	"repro/internal/paperdb"
	"repro/kws"
)

// config carries one ksearch invocation; flags map onto it 1:1.
type config struct {
	database string
	scale    int
	seed     int64
	remote   string
	engine   kws.EngineKind
	rank     kws.RankStrategy
	maxJoins int
	topK     int
	stream   bool
	verbose  bool
	keywords []string
}

func main() {
	var (
		database = flag.String("db", "paper", `database to search: "paper" (the running example) or "synthetic"`)
		scale    = flag.Int("scale", 2, "scale factor for the synthetic database")
		seed     = flag.Int64("seed", 1, "seed for the synthetic database")
		remote   = flag.String("remote", "", "base URL of a kwsd server to query instead of building a local engine (e.g. http://localhost:8080)")
		engine   = flag.String("engine", string(kws.EnginePaths), fmt.Sprintf("search engine: %v", kws.RegisteredEngines()))
		rank     = flag.String("ranking", string(kws.RankCloseFirst), fmt.Sprintf("ranking: %v", kws.RegisteredRankers()))
		maxJoins = flag.Int("maxjoins", 3, "maximum number of joins per connection")
		topK     = flag.Int("topk", 0, "return only the top K results (0 = all)")
		stream   = flag.Bool("stream", false, "print unranked answers as they are discovered instead of waiting for the full ranking")
		verbose  = flag.Bool("v", false, "print the per-join cardinality rendering as well")
	)
	flag.Parse()
	keywords := flag.Args()
	if len(keywords) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ksearch [flags] KEYWORD [KEYWORD...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := config{
		database: *database,
		scale:    *scale,
		seed:     *seed,
		remote:   *remote,
		engine:   kws.EngineKind(*engine),
		rank:     kws.RankStrategy(*rank),
		maxJoins: *maxJoins,
		topK:     *topK,
		stream:   *stream,
		verbose:  *verbose,
		keywords: keywords,
	}
	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ksearch:", err)
		os.Exit(1)
	}
}

// run executes one search — locally or against a kwsd server — writing
// results to stdout and hints to stderr.
func run(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	if cfg.remote != "" {
		return runRemote(ctx, cfg, stdout, stderr)
	}
	return runLocal(ctx, cfg, stdout, stderr)
}

// noAnswersHint tells the user how to widen a search that came back empty:
// zero answers almost always mean the connection budget was too tight for
// the keywords' distance in the tuple graph.
func noAnswersHint(stderr io.Writer, maxJoins int) {
	fmt.Fprintf(stderr, "no answers (try -maxjoins %d)\n", maxJoins+1)
}

func runLocal(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	var (
		db      *kws.Database
		labeler kws.Labeler
	)
	switch cfg.database {
	case "paper":
		db = kws.PaperExample()
		labeler = paperdb.DisplayLabel
	case "synthetic":
		db = kws.SyntheticCompany(cfg.scale, cfg.seed)
	default:
		return fmt.Errorf("unknown database %q (use paper or synthetic)", cfg.database)
	}
	e, err := kws.New(db, kws.WithLabeler(labeler))
	if err != nil {
		return err
	}
	rels, tuples, edges := e.Stats()
	fmt.Fprintf(stdout, "database: %s (%d relations, %d tuples, %d join edges)\n", cfg.database, rels, tuples, edges)
	fmt.Fprintf(stdout, "query: %v  engine: %s  ranking: %s  budget: %d joins\n\n", cfg.keywords, cfg.engine, cfg.rank, cfg.maxJoins)

	query := kws.Query{
		Keywords: cfg.keywords,
		Engine:   cfg.engine,
		Ranking:  cfg.rank,
		MaxJoins: cfg.maxJoins,
		TopK:     cfg.topK,
	}
	if cfg.stream {
		n := 0
		err := e.Stream(ctx, query, func(r kws.Result) bool {
			n++
			printResult(stdout, n, r, cfg.verbose)
			return true
		})
		if err != nil {
			return err
		}
		if n == 0 {
			fmt.Fprintln(stdout, "no connections found")
			noAnswersHint(stderr, cfg.maxJoins)
		}
		return nil
	}
	results, err := e.Search(ctx, query)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Fprintln(stdout, "no connections found")
		noAnswersHint(stderr, cfg.maxJoins)
		return nil
	}
	for _, r := range results {
		printResult(stdout, r.Rank, r, cfg.verbose)
	}
	return nil
}

// runRemote sends the query to a kwsd server, speaking the wire format of
// docs/http-api.md, and prints the results exactly like a local run.
func runRemote(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	q := httpapi.QueryRequest{
		Keywords: cfg.keywords,
		Engine:   string(cfg.engine),
		Ranking:  string(cfg.rank),
		MaxJoins: cfg.maxJoins,
		TopK:     cfg.topK,
	}
	body, err := json.Marshal(httpapi.SearchRequest{Query: &q, Stream: cfg.stream})
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(cfg.remote, "/") + "/v1/search"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er httpapi.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("remote %s: %s", resp.Status, er.Error)
		}
		return fmt.Errorf("remote %s", resp.Status)
	}
	fmt.Fprintf(stdout, "remote: %s\n", cfg.remote)
	fmt.Fprintf(stdout, "query: %v  engine: %s  ranking: %s  budget: %d joins\n\n", cfg.keywords, cfg.engine, cfg.rank, cfg.maxJoins)

	if cfg.stream {
		n := 0
		// json.Decoder handles NDJSON natively (values self-delimit) and,
		// unlike a line scanner, has no fixed line-length cap.
		dec := json.NewDecoder(resp.Body)
		for {
			var item httpapi.StreamItem
			if err := dec.Decode(&item); err == io.EOF {
				break
			} else if err != nil {
				return fmt.Errorf("bad stream line from server: %w", err)
			}
			if item.Error != "" {
				return fmt.Errorf("remote: %s", item.Error)
			}
			n++
			printResult(stdout, n, item.Result.ToResult(), cfg.verbose)
		}
		if n == 0 {
			fmt.Fprintln(stdout, "no connections found")
			noAnswersHint(stderr, cfg.maxJoins)
		}
		return nil
	}
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("bad response from server: %w", err)
	}
	if len(sr.Results) == 0 {
		fmt.Fprintln(stdout, "no connections found")
		noAnswersHint(stderr, cfg.maxJoins)
		return nil
	}
	for _, r := range sr.Results {
		printResult(stdout, r.Rank, r.ToResult(), cfg.verbose)
	}
	fmt.Fprintf(stdout, "\n(generation %d, cached: %v)\n", sr.Generation, sr.Cached)
	return nil
}

func printResult(w io.Writer, position int, r kws.Result, verbose bool) {
	closeness := "loose"
	if r.Close {
		closeness = "close"
	} else if r.CorroboratedAtInstance {
		closeness = "loose (close at instance level)"
	}
	fmt.Fprintf(w, "%2d. %s\n", position, r.Connection)
	fmt.Fprintf(w, "    len(RDB)=%d len(ER)=%d class=%s association=%s score=%.2f\n",
		r.RDBLength, r.ERLength, r.Class, closeness, r.Score)
	if verbose {
		fmt.Fprintf(w, "    %s\n", r.ConnectionWithCardinalities)
	}
}
