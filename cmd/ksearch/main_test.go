package main

import (
	"testing"

	"repro/kws"
)

func TestRunPaperDatabase(t *testing.T) {
	if err := run("paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, true, []string{"Smith", "XML"}); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := run("paper", 1, 1, kws.EngineMTJNT, kws.RankERLength, 3, 2, false, []string{"Smith", "XML"}); err != nil {
		t.Errorf("run mtjnt: %v", err)
	}
}

func TestRunSyntheticDatabase(t *testing.T) {
	if err := run("synthetic", 1, 7, kws.EnginePaths, kws.RankERLength, 3, 5, false, []string{"databases", "Smith"}); err != nil {
		// The sampled keywords may be absent at tiny scales; only a
		// configuration error is fatal here.
		t.Logf("synthetic run reported: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, []string{"x"}); err == nil {
		t.Error("unknown database should fail")
	}
	if err := run("paper", 1, 1, "bogus", kws.RankCloseFirst, 3, 0, false, []string{"x"}); err == nil {
		t.Error("unknown engine should fail")
	}
	if err := run("paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, []string{"doesnotmatch", "XML"}); err == nil {
		t.Error("unmatched keyword should surface as an error")
	}
}
