package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/kws"
)

// paperConfig is the base invocation the tests tweak per case.
func paperConfig(keywords ...string) config {
	return config{
		database: "paper",
		scale:    1,
		seed:     1,
		engine:   kws.EnginePaths,
		rank:     kws.RankCloseFirst,
		maxJoins: 3,
		keywords: keywords,
	}
}

// runCapture runs one invocation and returns its stdout and stderr.
func runCapture(t *testing.T, ctx context.Context, cfg config) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(ctx, cfg, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestRunPaperDatabase(t *testing.T) {
	ctx := context.Background()
	cfg := paperConfig("Smith", "XML")
	cfg.verbose = true
	stdout, _, err := runCapture(t, ctx, cfg)
	if err != nil {
		t.Errorf("run: %v", err)
	}
	if !strings.Contains(stdout, "Smith") {
		t.Errorf("stdout does not print results:\n%s", stdout)
	}

	cfg = paperConfig("Smith", "XML")
	cfg.engine, cfg.rank, cfg.topK = kws.EngineMTJNT, kws.RankERLength, 2
	if _, _, err := runCapture(t, ctx, cfg); err != nil {
		t.Errorf("run mtjnt: %v", err)
	}
}

func TestRunStreaming(t *testing.T) {
	cfg := paperConfig("Smith", "XML")
	cfg.stream, cfg.topK = true, 2
	if _, _, err := runCapture(t, context.Background(), cfg); err != nil {
		t.Errorf("run -stream: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := runCapture(t, ctx, paperConfig("Smith", "XML")); err == nil {
		t.Error("cancelled context should surface as an error")
	}
}

func TestRunSyntheticDatabase(t *testing.T) {
	cfg := paperConfig("databases", "Smith")
	cfg.database, cfg.seed, cfg.rank, cfg.topK = "synthetic", 7, kws.RankERLength, 5
	if _, _, err := runCapture(t, context.Background(), cfg); err != nil {
		// The sampled keywords may be absent at tiny scales; only a
		// configuration error is fatal here.
		t.Logf("synthetic run reported: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	cfg := paperConfig("x")
	cfg.database = "bogus"
	if _, _, err := runCapture(t, ctx, cfg); err == nil {
		t.Error("unknown database should fail")
	}
	cfg = paperConfig("x")
	cfg.engine = "bogus"
	if _, _, err := runCapture(t, ctx, cfg); err == nil {
		t.Error("unknown engine should fail")
	}
	if _, _, err := runCapture(t, ctx, paperConfig("doesnotmatch", "XML")); err == nil {
		t.Error("unmatched keyword should surface as an error")
	}
}

// TestZeroAnswersHint: a query whose keywords all match but whose budget is
// too tight must tell the user to widen it, on stderr, without failing.
func TestZeroAnswersHint(t *testing.T) {
	cfg := paperConfig("Alice", "XML")
	cfg.maxJoins = 1
	stdout, stderr, err := runCapture(t, context.Background(), cfg)
	if err != nil {
		t.Fatalf("zero-answer run failed: %v", err)
	}
	if !strings.Contains(stdout, "no connections found") {
		t.Errorf("stdout missing the no-connections line:\n%s", stdout)
	}
	if want := "no answers (try -maxjoins 2)"; !strings.Contains(stderr, want) {
		t.Errorf("stderr = %q, want it to contain %q", stderr, want)
	}

	// The hint also fires in streaming mode.
	cfg.stream = true
	_, stderr, err = runCapture(t, context.Background(), cfg)
	if err != nil {
		t.Fatalf("zero-answer stream run failed: %v", err)
	}
	if !strings.Contains(stderr, "no answers (try -maxjoins 2)") {
		t.Errorf("stream stderr = %q, want the maxjoins hint", stderr)
	}

	// A query with answers must not hint.
	_, stderr, err = runCapture(t, context.Background(), paperConfig("Smith", "XML"))
	if err != nil {
		t.Fatal(err)
	}
	if stderr != "" {
		t.Errorf("stderr = %q, want empty on a query with answers", stderr)
	}
}

// newRemote starts an in-process kwsd-equivalent server on the paper
// database and returns its base URL.
func newRemote(t *testing.T) string {
	t.Helper()
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(kws.PaperLabeler()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(engine, httpapi.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRunRemote: -remote speaks the kwsd wire format and prints the same
// result lines a local run would.
func TestRunRemote(t *testing.T) {
	url := newRemote(t)
	ctx := context.Background()

	local, _, err := runCapture(t, ctx, paperConfig("Smith", "XML"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig("Smith", "XML")
	cfg.remote = url
	remote, _, err := runCapture(t, ctx, cfg)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	for _, line := range strings.Split(local, "\n") {
		if strings.Contains(line, "len(RDB)") || strings.Contains(line, ". ") {
			if !strings.Contains(remote, line) {
				t.Errorf("remote output missing local line %q\nremote:\n%s", line, remote)
			}
		}
	}
	if !strings.Contains(remote, "generation 0") {
		t.Errorf("remote output missing generation line:\n%s", remote)
	}

	// Second identical query is served from the server's cache.
	remote2, _, err := runCapture(t, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(remote2, "cached: true") {
		t.Errorf("repeated remote query not reported cached:\n%s", remote2)
	}
}

func TestRunRemoteStreamAndHint(t *testing.T) {
	url := newRemote(t)
	ctx := context.Background()

	cfg := paperConfig("Smith", "XML")
	cfg.remote, cfg.stream = url, true
	stdout, _, err := runCapture(t, ctx, cfg)
	if err != nil {
		t.Fatalf("remote stream: %v", err)
	}
	if !strings.Contains(stdout, "Smith") {
		t.Errorf("remote stream printed no results:\n%s", stdout)
	}

	cfg = paperConfig("Alice", "XML")
	cfg.remote, cfg.maxJoins = url, 1
	_, stderr, err := runCapture(t, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "no answers (try -maxjoins 2)") {
		t.Errorf("remote zero-answer stderr = %q, want the maxjoins hint", stderr)
	}
}

func TestRunRemoteErrors(t *testing.T) {
	url := newRemote(t)
	cfg := paperConfig("doesnotmatch", "XML")
	cfg.remote = url
	if _, _, err := runCapture(t, context.Background(), cfg); err == nil {
		t.Error("remote unmatched keyword should surface as an error")
	}
	cfg = paperConfig("Smith")
	cfg.remote = "http://127.0.0.1:1" // nothing listens here
	if _, _, err := runCapture(t, context.Background(), cfg); err == nil {
		t.Error("unreachable remote should surface as an error")
	}
}
