package main

import (
	"context"
	"testing"

	"repro/kws"
)

func TestRunPaperDatabase(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, true, []string{"Smith", "XML"}); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := run(ctx, "paper", 1, 1, kws.EngineMTJNT, kws.RankERLength, 3, 2, false, false, []string{"Smith", "XML"}); err != nil {
		t.Errorf("run mtjnt: %v", err)
	}
}

func TestRunStreaming(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 2, true, false, []string{"Smith", "XML"}); err != nil {
		t.Errorf("run -stream: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, "paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, false, []string{"Smith", "XML"}); err == nil {
		t.Error("cancelled context should surface as an error")
	}
}

func TestRunSyntheticDatabase(t *testing.T) {
	if err := run(context.Background(), "synthetic", 1, 7, kws.EnginePaths, kws.RankERLength, 3, 5, false, false, []string{"databases", "Smith"}); err != nil {
		// The sampled keywords may be absent at tiny scales; only a
		// configuration error is fatal here.
		t.Logf("synthetic run reported: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "bogus", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, false, []string{"x"}); err == nil {
		t.Error("unknown database should fail")
	}
	if err := run(ctx, "paper", 1, 1, "bogus", kws.RankCloseFirst, 3, 0, false, false, []string{"x"}); err == nil {
		t.Error("unknown engine should fail")
	}
	if err := run(ctx, "paper", 1, 1, kws.EnginePaths, kws.RankCloseFirst, 3, 0, false, false, []string{"doesnotmatch", "XML"}); err == nil {
		t.Error("unmatched keyword should surface as an error")
	}
}
