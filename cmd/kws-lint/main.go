// Command kws-lint machine-checks the engine's prose invariants: pooled
// scratch hygiene (pooledescape), copy-on-write generation discipline
// (frozenwrite), map-iteration determinism (rangedeterminism) and context
// propagation (ctxflow), plus — unless -vet=false — go vet's standard
// analyzer set, all over the packages matching the given patterns.
//
// Usage:
//
//	kws-lint [-json] [-vet=false] [-suppressions] [packages...]
//
// With no patterns it checks ./... from the current directory, which must
// be inside the module. Exit status is 1 when any non-suppressed finding
// (or malformed //kwslint:ignore directive) is reported, 0 otherwise.
// -json emits the findings and the suppression inventory as one JSON
// object; -suppressions lists every live //kwslint:ignore directive with
// its reason and whether it matched a finding in this run, so suppression
// drift is auditable in review.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/frozenwrite"
	"repro/internal/analysis/passes/pooledescape"
	"repro/internal/analysis/passes/rangedeterminism"
)

// Analyzers is the kws-lint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	frozenwrite.Analyzer,
	pooledescape.Analyzer,
	rangedeterminism.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json output shape: schema version, findings (suppressed
// included, flagged), the suppression inventory, and vet diagnostics.
type report struct {
	Schema       int                `json:"schema"`
	Findings     []analysis.Finding `json:"findings"`
	Suppressions []suppressionJSON  `json:"suppressions"`
	Vet          []analysis.Finding `json:"vet,omitempty"`
}

type suppressionJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kws-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	withVet := fs.Bool("vet", true, "also run go vet's standard analyzer set")
	listSup := fs.Bool("suppressions", false, "list every //kwslint:ignore directive and exit")
	dir := fs.String("C", ".", "directory to run in (module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	res, err := analysis.Run(pkgs, Analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *listSup {
		return printSuppressions(res, stdout, *jsonOut)
	}

	var vetFindings []analysis.Finding
	if *withVet {
		vetFindings, err = runVet(*dir, patterns)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	active := res.Active()
	if *jsonOut {
		rep := report{Schema: 1, Findings: res.Findings, Suppressions: suppressionRows(res), Vet: vetFindings}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range active {
			fmt.Fprintln(stdout, f)
		}
		for _, f := range vetFindings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(active) > 0 || len(vetFindings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "kws-lint: %d finding(s)\n", len(active)+len(vetFindings))
		}
		return 1
	}
	return 0
}

func suppressionRows(res *analysis.Result) []suppressionJSON {
	rows := make([]suppressionJSON, 0, len(res.Suppressions))
	for _, s := range res.Suppressions {
		if s.Bad != "" {
			continue // malformed directives are findings, not suppressions
		}
		rows = append(rows, suppressionJSON{
			File: s.Pos.Filename, Line: s.Line,
			Analyzer: s.Analyzer, Reason: s.Reason, Used: s.Used,
		})
	}
	return rows
}

// printSuppressions renders the -suppressions audit listing. Malformed
// directives still fail the run.
func printSuppressions(res *analysis.Result, stdout io.Writer, jsonOut bool) int {
	bad := 0
	for _, f := range res.Findings {
		if f.Analyzer == analysis.DirectiveAnalyzer {
			fmt.Fprintln(stdout, f)
			bad++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suppressionRows(res)); err != nil {
			return 2
		}
	} else {
		for _, s := range res.Suppressions {
			if s.Bad != "" {
				continue
			}
			state := "used"
			if !s.Used {
				state = "unused"
			}
			fmt.Fprintf(stdout, "%s:%d: [%s] %s (%s)\n", s.Pos.Filename, s.Line, s.Analyzer, s.Reason, state)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runVet executes go vet's standard analyzer set with -json and maps its
// diagnostics into kws-lint findings (analyzer "vet/<name>").
func runVet(dir string, patterns []string) ([]analysis.Finding, error) {
	cmd := exec.Command("go", append([]string{"vet", "-json"}, patterns...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	runErr := cmd.Run()
	findings, perr := parseVetJSON(errBuf.Bytes())
	if perr != nil {
		return nil, fmt.Errorf("kws-lint: parsing go vet output: %v\n%s", perr, errBuf.String())
	}
	if runErr != nil && len(findings) == 0 {
		return nil, fmt.Errorf("kws-lint: go vet: %v\n%s", runErr, errBuf.String())
	}
	_ = out // go vet -json writes to stderr; stdout stays empty
	return findings, nil
}

// parseVetJSON decodes go vet -json output: '#'-prefixed comment lines
// interleaved with one JSON object per package,
// {"pkg": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}.
func parseVetJSON(raw []byte) ([]analysis.Finding, error) {
	var clean bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var findings []analysis.Finding
	dec := json.NewDecoder(&clean)
	for {
		var byPkg map[string]map[string][]vetDiag
		if err := dec.Decode(&byPkg); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range byPkg {
			for name, diags := range byAnalyzer {
				for _, d := range diags {
					f := analysis.Finding{Analyzer: "vet/" + name, Message: d.Message}
					f.File, f.Line, f.Col = splitPosn(d.Posn)
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return lessFinding(findings[i], findings[j]) })
	return findings, nil
}

func splitPosn(posn string) (file string, line, col int) {
	parts := strings.Split(posn, ":")
	if len(parts) >= 3 {
		line, _ = strconv.Atoi(parts[len(parts)-2])
		col, _ = strconv.Atoi(parts[len(parts)-1])
		file = strings.Join(parts[:len(parts)-2], ":")
		return file, line, col
	}
	return posn, 0, 0
}

func lessFinding(a, b analysis.Finding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Analyzer < b.Analyzer
}
