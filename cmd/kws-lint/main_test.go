package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	rangedetData = "../../internal/analysis/passes/rangedeterminism/testdata"
	ctxData      = "../../internal/analysis/passes/ctxflow/testdata"
)

func TestRunReportsFindingsAsText(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-vet=false", "-C", rangedetData, "./src/rangedet"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "[rangedeterminism]") {
		t.Errorf("output carries no rangedeterminism findings:\n%s", text)
	}
	if !strings.Contains(errBuf.String(), "finding(s)") {
		t.Errorf("stderr summary missing: %s", errBuf.String())
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-vet=false", "-C", ctxData, "./src/outofscope"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

func TestRunJSONReport(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-vet=false", "-json", "-C", rangedetData, "./src/rangedet"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errBuf.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if rep.Schema != 1 {
		t.Errorf("schema = %d, want 1", rep.Schema)
	}
	if len(rep.Findings) == 0 {
		t.Error("JSON report has no findings")
	}
	var suppressed bool
	for _, f := range rep.Findings {
		if f.Suppressed {
			suppressed = true
			if f.Reason == "" {
				t.Errorf("suppressed finding without reason: %+v", f)
			}
		}
	}
	if !suppressed {
		t.Error("JSON report should include the fixture's suppressed finding")
	}
	if len(rep.Suppressions) != 1 || !rep.Suppressions[0].Used {
		t.Errorf("suppressions = %+v, want exactly one used entry", rep.Suppressions)
	}
}

func TestRunSuppressionsListing(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-vet=false", "-suppressions", "-C", rangedetData, "./src/rangedet"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "[rangedeterminism]") || !strings.Contains(text, "(used)") {
		t.Errorf("suppression listing incomplete:\n%s", text)
	}
}

func TestRunSuppressionsJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-vet=false", "-suppressions", "-json", "-C", rangedetData, "./src/rangedet"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errBuf.String())
	}
	var rows []suppressionJSON
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("decoding -suppressions -json: %v\n%s", err, out.String())
	}
	if len(rows) != 1 || rows[0].Analyzer != "rangedeterminism" || !rows[0].Used {
		t.Errorf("rows = %+v, want one used rangedeterminism entry", rows)
	}
}

func TestRunWithVetOnCleanPackage(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", ctxData, "./src/outofscope"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
}

func TestParseVetJSON(t *testing.T) {
	raw := []byte(`# repro/internal/foo
{
	"repro/internal/foo": {
		"printf": [
			{"posn": "/x/b.go:12:3", "message": "non-constant format string"},
			{"posn": "/x/a.go:10:2", "message": "bad verb"}
		]
	}
}
# repro/internal/bar
{
	"repro/internal/bar": {}
}
`)
	findings, err := parseVetJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	// Sorted by file: a.go before b.go.
	if findings[0].File != "/x/a.go" || findings[0].Line != 10 || findings[0].Col != 2 {
		t.Errorf("first finding = %+v", findings[0])
	}
	if findings[0].Analyzer != "vet/printf" {
		t.Errorf("analyzer = %q, want vet/printf", findings[0].Analyzer)
	}
	if _, err := parseVetJSON([]byte("not json\n")); err == nil {
		t.Error("malformed vet output accepted")
	}
}

func TestSplitPosn(t *testing.T) {
	if f, l, c := splitPosn("/a/b.go:3:7"); f != "/a/b.go" || l != 3 || c != 7 {
		t.Errorf("splitPosn = %q %d %d", f, l, c)
	}
	if f, l, c := splitPosn("oddball"); f != "oddball" || l != 0 || c != 0 {
		t.Errorf("splitPosn fallback = %q %d %d", f, l, c)
	}
}

func TestRunBadPatternExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-vet=false", "./no/such/package"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
