// Command kwsd serves a kws.Engine over HTTP: keyword search with a
// generation-keyed result cache, live mutations, health and stats.
//
// Usage:
//
//	kwsd                                    # paper example on :8080
//	kwsd -db synthetic -scale 4 -addr :9000
//	kwsd -max-inflight 128 -timeout 5s -cache-bytes 134217728
//	kwsd -data-dir /var/lib/kwsd           # durable: WAL + snapshots
//	kwsd -shards 4                         # sharded scatter-gather engine
//
// With -data-dir the server persists every acknowledged mutation to a
// write-ahead log and snapshots the relational state every -snapshot-every
// generations; on boot it recovers the newest durable generation instead of
// starting over from the seed database. Without -data-dir nothing touches
// disk and a restart serves the seed data again.
//
// With -shards N (N > 1) the engine partitions its tuple graph and inverted
// index into N shards and answers searches by scatter-gather — byte-identical
// output, concurrent commits for mutation batches that touch disjoint
// shards. Combined with -data-dir each shard keeps its own WAL and snapshot
// under per-shard subdirectories, and /v1/stats grows a per-shard block; the
// shard count of a durable directory is fixed at first boot.
//
// Endpoints (see docs/http-api.md for the full wire reference):
//
//	POST /v1/search    single or batch keyword search, NDJSON streaming
//	POST /v1/mutate    apply an insert/update/delete batch atomically
//	GET  /v1/healthz   liveness plus current generation
//	GET  /v1/stats     cache hit rate, shed rate, latency quantiles
//
// The server answers repeated queries from a bounded LRU keyed by
// (query, generation): a mutation publishes a new generation, which makes
// every older cache entry unreachable without any invalidation scan.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/httpapi"
	"repro/internal/paperdb"
	"repro/internal/store"
	"repro/kws"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		database    = flag.String("db", "paper", `database to serve: "paper", "synthetic", "logs" or "docs"`)
		scale       = flag.Int("scale", 2, "scale factor for the synthetic databases")
		seed        = flag.Int64("seed", 1, "seed for the synthetic databases")
		parallelism = flag.Int("parallelism", 0, "engine parallelism (0 = GOMAXPROCS)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently executing searches; beyond it requests are shed with 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request execution budget")
		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes")
		cacheShards = flag.Int("cache-shards", 16, "result cache shard count")
		dataDir     = flag.String("data-dir", "", "directory for the WAL and snapshots; empty serves memory-only")
		snapEvery   = flag.Int("snapshot-every", 64, "generations between automatic snapshots (0 disables; WAL still grows)")
		shards      = flag.Int("shards", 1, "shard count for the scatter-gather engine (1 = unsharded)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *addr, *database, *scale, *seed, *parallelism, *shards, *dataDir, *snapEvery, httpapi.Options{
		MaxInFlight: *maxInFlight,
		Timeout:     *timeout,
		CacheBytes:  *cacheBytes,
		CacheShards: *cacheShards,
	}, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kwsd:", err)
		os.Exit(1)
	}
}

// buildEngine constructs the served engine for the named database; extra
// options (durability wiring) are appended after the database defaults.
func buildEngine(database string, scale int, seed int64, parallelism int, extra ...kws.Option) (*kws.Engine, error) {
	var (
		db      *kws.Database
		labeler kws.Labeler
	)
	switch database {
	case "paper":
		db = kws.PaperExample()
		labeler = paperdb.DisplayLabel
	case "synthetic":
		db = kws.SyntheticCompany(scale, seed)
	case "logs":
		db = kws.SyntheticLogs(scale, seed)
	case "docs":
		db = kws.SyntheticDocs(scale, seed)
	default:
		return nil, fmt.Errorf("unknown database %q (use paper, synthetic, logs or docs)", database)
	}
	opts := []kws.Option{kws.WithParallelism(parallelism)}
	if labeler != nil {
		opts = append(opts, kws.WithLabeler(labeler))
	}
	return kws.New(db, append(opts, extra...)...)
}

// run builds the engine, mounts the API and serves until ctx is cancelled,
// then drains in-flight requests. With a non-empty dataDir the engine runs
// durably: recovery before serving, WAL appends per mutation, a final
// checkpoint on graceful shutdown. If ready is non-nil it receives the bound
// address once the listener is up (used by tests and :0 listens).
func run(ctx context.Context, addr, database string, scale int, seed int64, parallelism, shards int, dataDir string, snapshotEvery int, opts httpapi.Options, ready chan<- string) error {
	var engineOpts []kws.Option
	durable := false
	switch {
	case dataDir != "" && shards > 1:
		ss, err := kws.OpenShardedStore(dataDir, shards)
		if err != nil {
			return err
		}
		defer ss.Close()
		durable = true
		engineOpts = append(engineOpts, kws.WithShardStores(ss), kws.WithSnapshotEvery(snapshotEvery))
	case dataDir != "":
		st, err := store.Open(dataDir)
		if err != nil {
			return err
		}
		defer st.Close()
		durable = true
		engineOpts = append(engineOpts, kws.WithStore(st), kws.WithSnapshotEvery(snapshotEvery))
	case shards > 1:
		engineOpts = append(engineOpts, kws.WithShards(shards))
	}
	engine, err := buildEngine(database, scale, seed, parallelism, engineOpts...)
	if err != nil {
		return err
	}
	if durable {
		ps, _ := engine.PersistStats()
		log.Printf("kwsd: recovered generation %d from %s (snapshot generation %d, %d WAL records replayed in %s)",
			engine.Generation(), dataDir, ps.SnapshotGeneration, ps.ReplayedRecords,
			ps.ReplayDuration.Round(time.Millisecond))
	}
	if v := engine.GenerationVector(); v != nil {
		log.Printf("kwsd: sharded engine: %d shards, generation vector %v", shards, v)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	relations, tuples, edges := engine.Stats()
	log.Printf("kwsd: serving %s database (%d relations, %d tuples, %d join edges) on %s",
		database, relations, tuples, edges, lis.Addr())
	if ready != nil {
		ready <- lis.Addr().String()
	}

	srv := &http.Server{
		Handler:           httpapi.New(engine, opts).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(lis); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("kwsd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if durable {
		// Snapshot the final generation so the next boot loads it directly
		// instead of replaying the log. Failure is not fatal: the WAL
		// already holds every acknowledged generation.
		if err := engine.Checkpoint(); err != nil {
			log.Printf("kwsd: shutdown checkpoint failed (WAL remains authoritative): %v", err)
		}
	}
	return <-errc
}
