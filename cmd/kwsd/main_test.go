package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/httpapi"
)

func TestBuildEngine(t *testing.T) {
	e, err := buildEngine("paper", 1, 1, 1)
	if err != nil {
		t.Fatalf("paper: %v", err)
	}
	if rels, tuples, _ := e.Stats(); rels == 0 || tuples == 0 {
		t.Errorf("paper engine empty: %d relations, %d tuples", rels, tuples)
	}
	for _, db := range []string{"synthetic", "logs", "docs"} {
		e, err := buildEngine(db, 1, 7, 1)
		if err != nil {
			t.Errorf("%s: %v", db, err)
			continue
		}
		if _, tuples, _ := e.Stats(); tuples == 0 {
			t.Errorf("%s engine empty", db)
		}
	}
	if _, err := buildEngine("bogus", 1, 1, 1); err == nil {
		t.Error("unknown database should fail")
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port,
// exercises the search/mutate/stats cycle over HTTP, and checks that
// cancelling the context drains it.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "paper", 1, 1, 1, 1, "", 0, httpapi.Options{}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	search := func() httpapi.SearchResponse {
		body, _ := json.Marshal(httpapi.SearchRequest{Query: &httpapi.QueryRequest{
			Keywords: []string{"Smith", "XML"}, MaxJoins: 3,
		}})
		resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status = %d", resp.StatusCode)
		}
		var sr httpapi.SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	if first := search(); first.Cached || len(first.Results) == 0 {
		t.Errorf("first search = cached %v, %d results", first.Cached, len(first.Results))
	}
	if second := search(); !second.Cached {
		t.Error("second search not served from cache")
	}

	mutateBody, _ := json.Marshal(httpapi.MutateRequest{Ops: []httpapi.Op{{
		Op: "delete", Table: "DEPENDENT", Key: map[string]any{"ID": "t2"},
	}}})
	resp, err := http.Post(base+"/v1/mutate", "application/json", bytes.NewReader(mutateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d", resp.StatusCode)
	}
	if after := search(); after.Generation != 1 || after.Cached {
		t.Errorf("post-mutation search = generation %d cached %v, want 1 and false", after.Generation, after.Cached)
	}

	statsResp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats httpapi.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Cache.HitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", stats.Cache.HitRate)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunPersistsAcrossRestart boots a durable server, mutates it, shuts it
// down, boots a second server over the same data directory and checks the
// mutation survived: same generation, same search output, and a stats
// persistence block describing the recovery.
func TestRunPersistsAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	boot := func() (base string, shutdown func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, "127.0.0.1:0", "paper", 1, 1, 1, 1, dataDir, 0, httpapi.Options{}, ready)
		}()
		select {
		case addr := <-ready:
			base = "http://" + addr
		case err := <-done:
			t.Fatalf("run exited before listening: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("server never became ready")
		}
		return base, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run returned %v on shutdown", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("server did not shut down")
			}
		}
	}
	search := func(base string) httpapi.SearchResponse {
		t.Helper()
		body, _ := json.Marshal(httpapi.SearchRequest{Query: &httpapi.QueryRequest{
			Keywords: []string{"Smith", "XML"}, MaxJoins: 3,
		}})
		resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr httpapi.SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	base, shutdown := boot()
	mutateBody, _ := json.Marshal(httpapi.MutateRequest{Ops: []httpapi.Op{{
		Op: "delete", Table: "DEPENDENT", Key: map[string]any{"ID": "t2"},
	}}})
	resp, err := http.Post(base+"/v1/mutate", "application/json", bytes.NewReader(mutateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d", resp.StatusCode)
	}
	before := search(base)
	if before.Generation != 1 {
		t.Fatalf("generation before restart = %d, want 1", before.Generation)
	}
	shutdown()

	base2, shutdown2 := boot()
	defer shutdown2()
	after := search(base2)
	if after.Generation != 1 {
		t.Fatalf("generation after restart = %d, want 1", after.Generation)
	}
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatalf("search results changed across restart:\nbefore: %+v\nafter:  %+v", before.Results, after.Results)
	}
	// The graceful shutdown checkpointed, so recovery loaded a snapshot and
	// replayed nothing.
	statsResp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats httpapi.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Persistence == nil {
		t.Fatal("durable server omitted the persistence block")
	}
	if stats.Persistence.LastSnapshotGeneration != 1 || stats.Persistence.ReplayedRecords != 0 {
		t.Fatalf("persistence after restart = %+v, want snapshot gen 1 and 0 replayed", stats.Persistence)
	}
}

// TestRunShardedPersistsAcrossRestart is the sharded analogue: a durable
// -shards 2 server mutates, restarts over the same directory, and recovers
// the same generation vector with byte-identical search output.
func TestRunShardedPersistsAcrossRestart(t *testing.T) {
	const shards = 2
	dataDir := t.TempDir()
	boot := func() (base string, shutdown func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, "127.0.0.1:0", "paper", 1, 1, 1, shards, dataDir, 0, httpapi.Options{}, ready)
		}()
		select {
		case addr := <-ready:
			base = "http://" + addr
		case err := <-done:
			t.Fatalf("run exited before listening: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("server never became ready")
		}
		return base, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run returned %v on shutdown", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("server did not shut down")
			}
		}
	}
	search := func(base string) httpapi.SearchResponse {
		t.Helper()
		body, _ := json.Marshal(httpapi.SearchRequest{Query: &httpapi.QueryRequest{
			Keywords: []string{"Smith", "XML"}, MaxJoins: 3,
		}})
		resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr httpapi.SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	stats := func(base string) httpapi.StatsResponse {
		t.Helper()
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr httpapi.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	base, shutdown := boot()
	mutateBody, _ := json.Marshal(httpapi.MutateRequest{Ops: []httpapi.Op{{
		Op: "delete", Table: "DEPENDENT", Key: map[string]any{"ID": "t2"},
	}}})
	resp, err := http.Post(base+"/v1/mutate", "application/json", bytes.NewReader(mutateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d", resp.StatusCode)
	}
	before := search(base)
	if before.Generation != 1 {
		t.Fatalf("generation before restart = %d, want 1", before.Generation)
	}
	beforeStats := stats(base)
	if len(beforeStats.Shards) != shards || len(beforeStats.GenerationVector) != shards {
		t.Fatalf("sharded server reports %d shard blocks, vector %v; want %d",
			len(beforeStats.Shards), beforeStats.GenerationVector, shards)
	}
	shutdown()

	base2, shutdown2 := boot()
	defer shutdown2()
	after := search(base2)
	if after.Generation != 1 {
		t.Fatalf("generation after restart = %d, want 1", after.Generation)
	}
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatalf("search results changed across restart:\nbefore: %+v\nafter:  %+v", before.Results, after.Results)
	}
	afterStats := stats(base2)
	if !reflect.DeepEqual(afterStats.GenerationVector, beforeStats.GenerationVector) {
		t.Fatalf("generation vector changed across restart: %v -> %v",
			beforeStats.GenerationVector, afterStats.GenerationVector)
	}
}
