package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSVFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 7, dir, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"DEPARTMENT.csv", "PROJECT.csv", "EMPLOYEE.csv", "WORKS_ON.csv", "DEPENDENT.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("%s does not look like CSV", want)
		}
	}
}

func TestRunStatsOutput(t *testing.T) {
	if err := run(1, 7, t.TempDir(), true); err != nil {
		t.Fatalf("run with stats: %v", err)
	}
}

func TestRunInvalidOutputDir(t *testing.T) {
	// A file in place of the output directory makes MkdirAll fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 7, filepath.Join(blocker, "sub"), false); err == nil {
		t.Error("unwritable output directory should fail")
	}
}
