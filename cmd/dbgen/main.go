// Command dbgen generates a synthetic company database (the paper's Figure 2
// schema at scale) and writes it as one CSV file per relation, so that other
// tools can load the same workload the experiments use.
//
// Usage:
//
//	dbgen -scale 4 -seed 7 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "workload scale factor (tuple count grows roughly linearly)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory for the CSV files")
		stats = flag.Bool("stats", true, "print per-relation tuple counts")
	)
	flag.Parse()
	if err := run(*scale, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
}

func run(scale int, seed int64, out string, stats bool) error {
	db, err := workload.Generate(workload.ScaledConfig(scale, seed))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, table := range db.Tables() {
		path := filepath.Join(out, table.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := relation.WriteCSV(f, table); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, table.Len())
	}
	if stats {
		if err := relation.DumpStats(os.Stdout, db); err != nil {
			return err
		}
	}
	return nil
}
