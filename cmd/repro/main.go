// Command repro regenerates the paper's figures and tables and runs the
// extended experiments.
//
// Usage:
//
//	repro                      # all paper artifacts (Figures 1-2, Tables 1-3, MTJNT loss, ranking, ablation)
//	repro -artifact table2     # one artifact: figure1, figure2, table1, table2, table3, mtjnt, ranking, ablation
//	repro -artifact search     # the running example through the public kws API
//	repro -artifact mutate     # the live engine: Apply mutations, search across generations
//	repro -artifact scale -scales 1,2,4,8 -queries 20
//	repro -artifact engines -scale 4 -queries 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/paperdb"
	"repro/kws"
)

func main() {
	var (
		artifact = flag.String("artifact", "all", "artifact to regenerate: all, figure1, figure2, table1, table2, table3, mtjnt, ranking, ablation, search, mutate, scale, engines")
		scales   = flag.String("scales", "1,2,4", "comma-separated workload scales for -artifact scale")
		scale    = flag.Int("scale", 2, "workload scale for -artifact engines")
		queries  = flag.Int("queries", 10, "number of generated queries for scaled experiments")
		maxJoins = flag.Int("maxjoins", 3, "connection budget in joins for scaled experiments")
		seed     = flag.Int64("seed", 42, "random seed for workload generation")
	)
	flag.Parse()

	if err := run(*artifact, *scales, *scale, *queries, *maxJoins, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(artifact, scales string, scale, queries, maxJoins int, seed int64) error {
	single := map[string]func() (experiments.Report, error){
		"figure1": experiments.Figure1,
		"figure2": experiments.Figure2,
		"table1":  experiments.Table1,
		"table2":  experiments.Table2,
		"table3":  experiments.Table3,
		"mtjnt":   experiments.MTJNTLoss,
		"ranking": experiments.RankingComparison,
	}
	switch artifact {
	case "all":
		reports, err := experiments.All()
		if err != nil {
			return err
		}
		for _, r := range reports {
			fmt.Println(r.String())
		}
		return nil
	case "ablation":
		_, r, err := experiments.Ablation()
		if err != nil {
			return err
		}
		fmt.Println(r.String())
		return nil
	case "scale":
		parsed, err := parseScales(scales)
		if err != nil {
			return err
		}
		_, r, err := experiments.ScaleExperiment(experiments.ScaleOptions{
			Scales: parsed, Queries: queries, MaxEdges: maxJoins, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(r.String())
		return nil
	case "engines":
		_, r, err := experiments.EngineComparison(scale, queries, maxJoins, seed)
		if err != nil {
			return err
		}
		fmt.Println(r.String())
		return nil
	case "search":
		return searchArtifact(maxJoins)
	case "mutate":
		return mutateArtifact(maxJoins)
	default:
		f, ok := single[artifact]
		if !ok {
			return fmt.Errorf("unknown artifact %q", artifact)
		}
		r, err := f()
		if err != nil {
			return err
		}
		fmt.Println(r.String())
		return nil
	}
}

// searchArtifact runs the paper's running example ("Smith XML") through the
// public kws API with every engine kind, printing the answers in the paper's
// Table 2-3 notation. The paper labels (d1, p1, w_f1, ...) are not wired
// into the library any more: they are passed explicitly as the labeler.
func searchArtifact(maxJoins int) error {
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(paperdb.DisplayLabel))
	if err != nil {
		return err
	}
	ctx := context.Background()
	fmt.Println("== Running example through the public kws API: query {Smith XML} ==")
	for _, kind := range kws.RegisteredEngines() {
		results, err := engine.Search(ctx, kws.Query{
			Keywords: []string{"Smith", "XML"},
			Engine:   kind,
			Ranking:  kws.RankCloseFirst,
			MaxJoins: maxJoins,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nengine %s (%d answers):\n", kind, len(results))
		for _, r := range results {
			fmt.Printf("%2d. %-50s len(RDB)=%d len(ER)=%d close=%v\n",
				r.Rank, r.ConnectionWithCardinalities, r.RDBLength, r.ERLength, r.Close)
		}
	}
	return nil
}

// mutateArtifact demonstrates the live engine on the paper's running
// example: it applies mutation batches with Engine.Apply — hiring an
// employee, moving her between departments, firing her — and reruns the
// "Smith XML" query on every published generation, printing how the answer
// set evolves while the graph and index are maintained incrementally.
func mutateArtifact(maxJoins int) error {
	engine, err := kws.New(kws.PaperExample(), kws.WithLabeler(paperdb.DisplayLabel))
	if err != nil {
		return err
	}
	ctx := context.Background()
	show := func(header string, keywords ...string) error {
		results, err := engine.Search(ctx, kws.Query{Keywords: keywords, MaxJoins: maxJoins})
		if err != nil {
			return err
		}
		fmt.Printf("\n[generation %d] %s — query %v (%d answers):\n",
			engine.Generation(), header, keywords, len(results))
		for _, r := range results {
			fmt.Printf("%2d. %-50s close=%v\n", r.Rank, r.ConnectionWithCardinalities, r.Close)
		}
		return nil
	}
	apply := func(label string, ops ...kws.Op) error {
		gen, err := engine.Apply(ctx, kws.Mutation{Ops: ops})
		if err != nil {
			return err
		}
		fmt.Printf("\n== Apply: %s -> generation %d ==\n", label, gen)
		return nil
	}

	fmt.Println("== Live engine on the running example: incremental Apply, snapshot generations ==")
	if err := show("initial database", "Smith", "XML"); err != nil {
		return err
	}
	if err := apply("hire Zoe Smith into d3 (the history department) and assign her to p1",
		kws.Insert("EMPLOYEE", map[string]any{"SSN": "e5", "L_NAME": "Smith", "S_NAME": "Zoe", "D_ID": "d3"}),
		kws.Insert("WORKS_ON", map[string]any{"ESSN": "e5", "P_ID": "p1", "HOURS": 20}),
	); err != nil {
		return err
	}
	if err := show("Zoe reaches XML only through her p1 assignment", "Smith", "XML"); err != nil {
		return err
	}
	if err := apply("move Zoe to d1, whose description matches XML directly",
		kws.Update("EMPLOYEE", map[string]any{"SSN": "e5"}, map[string]any{"D_ID": "d1"}),
	); err != nil {
		return err
	}
	if err := show("a close d1-Zoe association appears", "Smith", "XML"); err != nil {
		return err
	}
	if err := apply("fire Zoe again (assignment first, then the employee)",
		kws.Delete("WORKS_ON", map[string]any{"ESSN": "e5", "P_ID": "p1"}),
		kws.Delete("EMPLOYEE", map[string]any{"SSN": "e5"}),
	); err != nil {
		return err
	}
	if err := show("back to the paper's Table 2 answers", "Smith", "XML"); err != nil {
		return err
	}
	return nil
}

func parseScales(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid scale %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales given")
	}
	return out, nil
}
