package main

import "testing"

func TestRunSingleArtifacts(t *testing.T) {
	for _, artifact := range []string{"figure1", "figure2", "table1", "table2", "table3", "mtjnt", "ranking", "ablation", "search", "mutate"} {
		if err := run(artifact, "1", 1, 2, 3, 42); err != nil {
			t.Errorf("run(%s): %v", artifact, err)
		}
	}
}

func TestRunAllAndScaledArtifacts(t *testing.T) {
	if err := run("all", "1", 1, 2, 3, 42); err != nil {
		t.Errorf("run(all): %v", err)
	}
	if err := run("scale", "1,2", 1, 3, 3, 42); err != nil {
		t.Errorf("run(scale): %v", err)
	}
	if err := run("engines", "1", 1, 3, 3, 42); err != nil {
		t.Errorf("run(engines): %v", err)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run("bogus", "1", 1, 1, 3, 42); err == nil {
		t.Error("unknown artifact should fail")
	}
}

func TestParseScales(t *testing.T) {
	got, err := parseScales("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseScales = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-1"} {
		if _, err := parseScales(bad); err == nil {
			t.Errorf("parseScales(%q) should fail", bad)
		}
	}
}
